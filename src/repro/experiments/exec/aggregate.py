"""Streaming study aggregation: partial results and online cross-seed CIs.

The legacy executor assembled its :class:`~repro.experiments.study.StudyResult`
only after the last scenario finished — a 10k-point study that died at point
9,999 had nothing to show.  The :class:`StreamingAggregator` instead absorbs
each work item's :class:`~repro.experiments.results.ScenarioResult` the
moment it completes (in *any* order — pool workers and resumed studies
deliver out of order) and can serve, at every instant:

* :meth:`partial` — a well-formed ``StudyResult`` over everything finished
  so far (per point, the replications completed so far, in seed order);
* :meth:`goodput_interval` — the cross-seed confidence interval of any
  point, updated online as its replications land;
* :meth:`result` — the complete study, once every item is in.

Determinism: runs are held in a ``(point, replication)``-keyed map and
always *read out* in replication order, so the assembled result — including
every confidence interval — is bit-identical whatever order items completed
in.  A resumed study therefore produces exactly the same ``StudyResult`` as
an uninterrupted one (pinned by the crash-resume integration test).

:class:`ProgressSnapshot` is the companion progress report (items done /
failed / retried, throughput, ETA) handed to the progress callback after
every queue transition; the study CLI renders it as a live progress line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.statistics import ConfidenceInterval, confidence_interval
from repro.experiments.results import ScenarioResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.study import PointResult, StudyResult, SweepSpec


@dataclass(frozen=True)
class ProgressSnapshot:
    """One observation of study execution progress.

    Attributes:
        total: Total work items in the study.
        done: Items finished successfully, including ``resumed`` ones.
        failed: Items that exhausted their retry budget (terminal).
        retried: Cumulative re-queues (failures and expired leases).
        resumed: Items satisfied from the result store without executing.
        elapsed: Wall-clock seconds since execution started.
        eta: Estimated seconds to completion (None until at least one item
            actually executed in this run).
    """

    total: int
    done: int
    failed: int
    retried: int
    resumed: int
    elapsed: float
    eta: Optional[float]

    @property
    def remaining(self) -> int:
        """Items still pending or in flight."""
        return self.total - self.done - self.failed

    @property
    def executed(self) -> int:
        """Items actually simulated in this run (done minus resumed)."""
        return self.done - self.resumed

    def describe(self) -> str:
        """One-line human rendering (used by the study CLI progress line)."""
        parts = [f"{self.done}/{self.total} done"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.eta is not None and self.remaining:
            parts.append(f"eta {self.eta:.1f}s")
        return " · ".join(parts)


class StreamingAggregator:
    """Incrementally assembles a study result as work items complete.

    Args:
        spec: The sweep being executed; fixes the point grid, the seed list
            and the axis order of every (partial or final) result.
    """

    def __init__(self, spec: "SweepSpec") -> None:
        self.spec = spec
        self._points = spec.points()
        self._seeds = spec.seeds()
        self._runs: Dict[Tuple[int, int], ScenarioResult] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, point_index: int, replication: int,
            result: ScenarioResult) -> None:
        """Absorb one completed (point, replication) scenario result."""
        self._runs[(point_index, replication)] = result

    def has(self, point_index: int, replication: int) -> bool:
        """True when that (point, replication) result already arrived."""
        return (point_index, replication) in self._runs

    # ------------------------------------------------------------------
    # Online aggregates
    # ------------------------------------------------------------------
    @property
    def completed_items(self) -> int:
        """Number of results absorbed so far."""
        return len(self._runs)

    @property
    def expected_items(self) -> int:
        """Total results the complete study needs."""
        return len(self._points) * len(self._seeds)

    @property
    def complete(self) -> bool:
        """True once every (point, replication) result arrived."""
        return self.completed_items == self.expected_items

    def completed_replications(self, point_index: int) -> List[int]:
        """Replication indices of ``point_index`` that completed (sorted)."""
        return sorted(rep for (point, rep) in self._runs
                      if point == point_index)

    def goodput_interval(self, point_index: int) -> ConfidenceInterval:
        """Cross-seed CI of the point's aggregate goodput, *so far*.

        Computed over the completed replications in seed order, so the value
        converges monotonically toward the final interval as replications
        land and never depends on their arrival order.
        """
        goodputs = [
            self._runs[(point_index, rep)].aggregate_goodput_bps
            for rep in self.completed_replications(point_index)
        ]
        return confidence_interval(goodputs)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _point_result(self, point, replications: List[int]) -> "PointResult":
        from repro.experiments.study import PointResult

        return PointResult(
            values=dict(point.values),
            seeds=[self._seeds[rep] for rep in replications],
            runs=[self._runs[(point.index, rep)] for rep in replications],
        )

    def partial(self) -> "StudyResult":
        """A study over everything completed so far.

        Points with no completed replication yet are omitted; points with
        some are included with the replications that finished (seed order).
        The result is safe to save/serve while execution continues —
        streaming consumers (dashboards, checkpoint exports) read this.
        """
        from repro.experiments.study import StudyResult

        points = []
        for point in self._points:
            replications = self.completed_replications(point.index)
            if replications:
                points.append(self._point_result(point, replications))
        return StudyResult(
            name=self.spec.name,
            axis_names=self.spec.axis_names,
            replications=self.spec.replications,
            points=points,
        )

    def result(self) -> "StudyResult":
        """The complete study result.

        Raises:
            ValueError: If any (point, replication) result is still missing —
                callers should surface the queue's failed items instead of
                fabricating an incomplete study.
        """
        if not self.complete:
            missing = self.expected_items - self.completed_items
            raise ValueError(
                f"study {self.spec.name!r} is incomplete: "
                f"{missing} of {self.expected_items} items missing"
            )
        from repro.experiments.study import StudyResult

        return StudyResult(
            name=self.spec.name,
            axis_names=self.spec.axis_names,
            replications=self.spec.replications,
            points=[
                self._point_result(point, list(range(len(self._seeds))))
                for point in self._points
            ],
        )
