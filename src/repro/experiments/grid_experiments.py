"""Grid-topology experiments (Section 4.4.1: Figures 16-17 and Table 3).

The 21-node grid carries six competing FTP flows; the paper reports the
aggregate goodput per bandwidth (Fig. 16), the per-flow goodput breakdown at
11 Mbit/s (Fig. 17) and Jain's fairness index for every variant and bandwidth
(Table 3).  All three come from the same set of scenario runs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence, Tuple

from repro.experiments.config import PAPER_BANDWIDTHS, ScenarioConfig, TransportVariant
from repro.experiments.results import ScenarioResult
from repro.experiments.runner import run_scenario
from repro.topology.grid import grid_topology

#: Variant line-up of the multi-flow comparisons (Figures 16-19, Tables 3-4).
DEFAULT_MULTIFLOW_VARIANTS: Tuple[TransportVariant, ...] = (
    TransportVariant.VEGAS,
    TransportVariant.NEWRENO,
    TransportVariant.VEGAS_ACK_THINNING,
    TransportVariant.NEWRENO_ACK_THINNING,
)


def grid_study(
    base_config: ScenarioConfig,
    bandwidths: Sequence[float] = PAPER_BANDWIDTHS,
    variants: Sequence[TransportVariant] = DEFAULT_MULTIFLOW_VARIANTS,
) -> Dict[TransportVariant, Dict[float, ScenarioResult]]:
    """Run every (variant, bandwidth) combination on the 21-node grid.

    Returns:
        ``results[variant][bandwidth_mbps]`` → :class:`ScenarioResult`; the
        per-flow goodputs (Fig. 17) and Jain index (Table 3) are properties of
        each :class:`ScenarioResult`.
    """
    topology = grid_topology()
    results: Dict[TransportVariant, Dict[float, ScenarioResult]] = {}
    for variant in variants:
        per_bandwidth: Dict[float, ScenarioResult] = {}
        for bandwidth in bandwidths:
            config = replace(base_config, variant=variant, bandwidth_mbps=bandwidth)
            per_bandwidth[bandwidth] = run_scenario(topology, config)
        results[variant] = per_bandwidth
    return results


def fairness_table(
    results: Dict[TransportVariant, Dict[float, ScenarioResult]],
) -> Dict[float, Dict[TransportVariant, float]]:
    """Rearrange study results into the paper's Table 3/4 layout.

    Returns:
        ``table[bandwidth][variant]`` → Jain fairness index.
    """
    table: Dict[float, Dict[TransportVariant, float]] = {}
    for variant, per_bandwidth in results.items():
        for bandwidth, result in per_bandwidth.items():
            table.setdefault(bandwidth, {})[variant] = result.fairness_index
    return table
