"""Grid-topology experiments (Section 4.4.1: Figures 16-17 and Table 3).

The 21-node grid carries six competing FTP flows; the paper reports the
aggregate goodput per bandwidth (Fig. 16), the per-flow goodput breakdown at
11 Mbit/s (Fig. 17) and Jain's fairness index for every variant and bandwidth
(Table 3).  All three come from the same set of scenario runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.config import PAPER_BANDWIDTHS, ScenarioConfig, TransportVariant
from repro.experiments.results import ScenarioResult
from repro.experiments.study import StudyRunner, SweepSpec

#: Variant line-up of the multi-flow comparisons (Figures 16-19, Tables 3-4).
DEFAULT_MULTIFLOW_VARIANTS: Tuple[TransportVariant, ...] = (
    TransportVariant.VEGAS,
    TransportVariant.NEWRENO,
    TransportVariant.VEGAS_ACK_THINNING,
    TransportVariant.NEWRENO_ACK_THINNING,
)


def grid_study(
    base_config: ScenarioConfig,
    bandwidths: Sequence[float] = PAPER_BANDWIDTHS,
    variants: Sequence[TransportVariant] = DEFAULT_MULTIFLOW_VARIANTS,
    runner: Optional[StudyRunner] = None,
) -> Dict[TransportVariant, Dict[float, ScenarioResult]]:
    """Run every (variant, bandwidth) combination on the 21-node grid.

    Returns:
        ``results[variant][bandwidth_mbps]`` → :class:`ScenarioResult`; the
        per-flow goodputs (Fig. 17) and Jain index (Table 3) are properties of
        each :class:`ScenarioResult`.
    """
    spec = SweepSpec(
        name="grid-study",
        topology="grid",
        axes={"variant": variants, "bandwidth_mbps": bandwidths},
        base=base_config,
    )
    study = (runner or StudyRunner()).run(spec)
    return study.nested("variant", "bandwidth_mbps", leaf=lambda p: p.run)


def fairness_table(
    results: Dict[TransportVariant, Dict[float, ScenarioResult]],
) -> Dict[float, Dict[TransportVariant, float]]:
    """Rearrange study results into the paper's Table 3/4 layout.

    Returns:
        ``table[bandwidth][variant]`` → Jain fairness index.
    """
    table: Dict[float, Dict[TransportVariant, float]] = {}
    for variant, per_bandwidth in results.items():
        for bandwidth, result in per_bandwidth.items():
            table.setdefault(bandwidth, {})[variant] = result.fairness_index
    return table
