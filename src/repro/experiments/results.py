"""Result containers and table formatting for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.statistics import ConfidenceInterval, jain_fairness_index
from repro.core.units import kbps
from repro.phy.energy import EnergyReport


@dataclass
class FlowResult:
    """Measures for one flow at the end of a scenario run.

    Attributes:
        flow_id: 1-based flow index (FTP *i* in the paper's figures).
        source: Source node id.
        destination: Destination node id.
        delivered_packets: In-order packets delivered to the receiver.
        goodput_bps: Goodput in bit/s (batch-means estimate when enough
            batches completed, overall rate otherwise).
        goodput_ci: Confidence interval of the per-batch goodput (bit/s).
        retransmissions: Transport-layer retransmissions at the sender.
        retransmissions_per_packet: Retransmissions per delivered packet.
        timeouts: Sender retransmission timeouts.
        average_window: Time-averaged congestion window (packets); 0 for UDP.
        variant: Label of the transport variant *this* flow ran (flows of one
            scenario may differ under the Workload API); empty for results
            deserialized from pre-workload JSON.
        label: The flow's :attr:`~repro.experiments.workload.FlowSpec.label`,
            if one was set.
    """

    flow_id: int
    source: int
    destination: int
    delivered_packets: int
    goodput_bps: float
    goodput_ci: Optional[ConfidenceInterval]
    retransmissions: int
    retransmissions_per_packet: float
    timeouts: int
    average_window: float
    variant: str = ""
    label: Optional[str] = None

    @property
    def goodput_kbps(self) -> float:
        """Goodput in kbit/s (the unit used in the paper's figures)."""
        return kbps(self.goodput_bps)

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        return {
            "flow_id": self.flow_id,
            "source": self.source,
            "destination": self.destination,
            "delivered_packets": self.delivered_packets,
            "goodput_bps": self.goodput_bps,
            "goodput_ci": self.goodput_ci.to_dict() if self.goodput_ci else None,
            "retransmissions": self.retransmissions,
            "retransmissions_per_packet": self.retransmissions_per_packet,
            "timeouts": self.timeouts,
            "average_window": self.average_window,
            "variant": self.variant,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlowResult":
        """Rebuild a :class:`FlowResult` from :meth:`to_dict` output."""
        ci = data.get("goodput_ci")
        return cls(
            flow_id=data["flow_id"],
            source=data["source"],
            destination=data["destination"],
            delivered_packets=data["delivered_packets"],
            goodput_bps=data["goodput_bps"],
            goodput_ci=ConfidenceInterval.from_dict(ci) if ci else None,
            retransmissions=data["retransmissions"],
            retransmissions_per_packet=data["retransmissions_per_packet"],
            timeouts=data["timeouts"],
            average_window=data["average_window"],
            variant=data.get("variant", ""),
            label=data.get("label"),
        )


@dataclass
class ScenarioResult:
    """Aggregate measures for one scenario run.

    Attributes (beyond the headline scalars):
        metrics: Flat snapshot of every counter/gauge instrument at the end
            of the run, keyed by hierarchical name
            (``mac.node3.data_dropped_retry``).  Populated for every run; see
            :meth:`metric_total` for wildcard aggregation.
        timeseries: Time-series payloads (``{name: {unit, times, values}}``)
            collected while the metrics plane was enabled
            (``ScenarioConfig.metrics=True``); ``None`` otherwise.
    """

    name: str
    variant: str
    bandwidth_mbps: float
    simulated_time: float
    delivered_packets: int
    flows: List[FlowResult] = field(default_factory=list)
    false_route_failures: int = 0
    link_layer_drop_probability: float = 0.0
    mac_frames_sent: int = 0
    reached_packet_target: bool = True
    energy: Optional[EnergyReport] = None
    metrics: Optional[Dict[str, float]] = None
    timeseries: Optional[Dict[str, dict]] = None

    @property
    def aggregate_goodput_bps(self) -> float:
        """Sum of all per-flow goodputs in bit/s."""
        return sum(flow.goodput_bps for flow in self.flows)

    @property
    def aggregate_goodput_kbps(self) -> float:
        """Aggregate goodput in kbit/s."""
        return kbps(self.aggregate_goodput_bps)

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over the per-flow goodputs."""
        return jain_fairness_index([flow.goodput_bps for flow in self.flows])

    @property
    def average_retransmissions_per_packet(self) -> float:
        """Mean over flows of retransmissions per delivered packet."""
        if not self.flows:
            return 0.0
        return sum(f.retransmissions_per_packet for f in self.flows) / len(self.flows)

    @property
    def average_window(self) -> float:
        """Mean over flows of the time-averaged congestion window."""
        if not self.flows:
            return 0.0
        return sum(f.average_window for f in self.flows) / len(self.flows)

    def flow(self, flow_id: int) -> FlowResult:
        """Return the result of flow ``flow_id`` (1-based)."""
        for flow in self.flows:
            if flow.flow_id == flow_id:
                return flow
        raise KeyError(f"no flow {flow_id} in scenario {self.name}")

    def flow_by_label(self, label: str) -> FlowResult:
        """Return the result of the flow whose spec carried ``label``."""
        for flow in self.flows:
            if flow.label == label:
                return flow
        raise KeyError(f"no flow labelled {label!r} in scenario {self.name}")

    def flows_for_variant(self, variant_label: str) -> List[FlowResult]:
        """All per-flow results that ran the given transport variant label."""
        return [flow for flow in self.flows if flow.variant == variant_label]

    # ------------------------------------------------------------------
    # Metrics access
    # ------------------------------------------------------------------
    def metric_total(self, pattern: str) -> float:
        """Sum of the snapshot values whose names match ``pattern``.

        ``pattern`` uses shell-style wildcards over the hierarchical
        instrument name, e.g. ``metric_total("mac.node*.data_dropped_retry")``
        for the network-wide retry-drop count or
        ``metric_total("route.node*.rerrs_sent")`` for total RERRs.  Returns
        0.0 when no snapshot was collected or nothing matches.
        """
        if not self.metrics:
            return 0.0
        return sum(value for name, value in self.metrics.items()
                   if fnmatchcase(name, pattern))

    def series(self, name: str) -> Tuple[List[float], List[float]]:
        """The ``(times, values)`` of one exported time series.

        Raises:
            KeyError: If no time series were collected or the name is absent.
        """
        if not self.timeseries or name not in self.timeseries:
            raise KeyError(f"no time series {name!r} in scenario {self.name}")
        data = self.timeseries[name]
        return list(data["times"]), list(data["values"])

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :meth:`from_dict`).

        Floats survive a JSON round trip exactly, so
        ``ScenarioResult.from_dict(json.loads(json.dumps(r.to_dict()))) == r``.
        """
        return {
            "name": self.name,
            "variant": self.variant,
            "bandwidth_mbps": self.bandwidth_mbps,
            "simulated_time": self.simulated_time,
            "delivered_packets": self.delivered_packets,
            "flows": [flow.to_dict() for flow in self.flows],
            "false_route_failures": self.false_route_failures,
            "link_layer_drop_probability": self.link_layer_drop_probability,
            "mac_frames_sent": self.mac_frames_sent,
            "reached_packet_target": self.reached_packet_target,
            "energy": self.energy.to_dict() if self.energy else None,
            "metrics": dict(self.metrics) if self.metrics is not None else None,
            "timeseries": (
                {name: dict(series) for name, series in self.timeseries.items()}
                if self.timeseries is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        """Rebuild a :class:`ScenarioResult` from :meth:`to_dict` output."""
        energy = data.get("energy")
        return cls(
            name=data["name"],
            variant=data["variant"],
            bandwidth_mbps=data["bandwidth_mbps"],
            simulated_time=data["simulated_time"],
            delivered_packets=data["delivered_packets"],
            flows=[FlowResult.from_dict(f) for f in data.get("flows", [])],
            false_route_failures=data["false_route_failures"],
            link_layer_drop_probability=data["link_layer_drop_probability"],
            mac_frames_sent=data["mac_frames_sent"],
            reached_packet_target=data["reached_packet_target"],
            energy=EnergyReport.from_dict(energy) if energy else None,
            metrics=data.get("metrics"),
            timeseries=data.get("timeseries"),
        )


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width text table (used by the benchmark scripts)."""
    columns = len(headers)
    normalized_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in normalized_rows:
        for index in range(min(columns, len(row))):
            widths[index] = max(widths[index], len(row[index]))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in normalized_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        # Four significant digits keeps small probabilities (0.0048) and large
        # goodputs (1234.5 kbit/s) readable in the same column.
        return f"{value:.4g}"
    return str(value)
