"""Chain-topology experiments (Section 4.3 of the paper: Figures 2-10).

Each function is a thin compatibility wrapper around the declarative
:mod:`repro.experiments.study` API: it builds the corresponding
:class:`~repro.experiments.study.SweepSpec`, runs it (serially, or through a
caller-supplied :class:`~repro.experiments.study.StudyRunner` for parallel
execution and JSON caching) and reshapes the flat point list into the nested
``results[swept_param][...]`` dictionaries the benchmark scripts have always
consumed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ScenarioConfig, TransportVariant
from repro.experiments.paced_udp import default_udp_interval
from repro.experiments.results import ScenarioResult
from repro.experiments.runner import run_scenario
from repro.experiments.study import StudyRunner, SweepSpec
from repro.mac.timing import timing_for_bandwidth
from repro.topology.chain import chain_topology


def _execute(spec: SweepSpec, runner: Optional[StudyRunner]):
    return (runner or StudyRunner()).run(spec)


def run_chain(config: ScenarioConfig, hops: int) -> ScenarioResult:
    """Run one single-flow chain scenario."""
    return run_scenario(chain_topology(hops=hops), config)


# ----------------------------------------------------------------------
# Figures 2 and 3: Vegas goodput / window vs. hops for α = 2, 3, 4
# ----------------------------------------------------------------------
def vegas_alpha_study(
    base_config: ScenarioConfig,
    hop_counts: Sequence[int],
    alphas: Sequence[float] = (2.0, 3.0, 4.0),
    runner: Optional[StudyRunner] = None,
) -> Dict[float, Dict[int, ScenarioResult]]:
    """Vegas with different α on the 2 Mbit/s chain (Figures 2 and 3).

    Returns:
        ``results[alpha][hops]`` → :class:`ScenarioResult`.
    """
    spec = SweepSpec(
        name="vegas-alpha-vs-hops",
        topology="chain",
        axes={"vegas_alpha": alphas, "hops": hop_counts},
        base=replace(base_config, variant=TransportVariant.VEGAS),
    )
    return _execute(spec, runner).nested("vegas_alpha", "hops", leaf=lambda p: p.run)


# ----------------------------------------------------------------------
# Figure 4: Vegas goodput on the 7-hop chain for different bandwidths
# ----------------------------------------------------------------------
def vegas_alpha_bandwidth_study(
    base_config: ScenarioConfig,
    bandwidths: Sequence[float] = (2.0, 5.5, 11.0),
    alphas: Sequence[float] = (2.0, 3.0, 4.0),
    hops: int = 7,
    runner: Optional[StudyRunner] = None,
) -> Dict[float, Dict[float, ScenarioResult]]:
    """Vegas α sweep across bandwidths on the 7-hop chain (Figure 4).

    Returns:
        ``results[alpha][bandwidth]`` → :class:`ScenarioResult`.
    """
    spec = SweepSpec(
        name="vegas-alpha-vs-bandwidth",
        topology="chain",
        topology_params={"hops": hops},
        axes={"vegas_alpha": alphas, "bandwidth_mbps": bandwidths},
        base=replace(base_config, variant=TransportVariant.VEGAS),
    )
    return _execute(spec, runner).nested(
        "vegas_alpha", "bandwidth_mbps", leaf=lambda p: p.run
    )


# ----------------------------------------------------------------------
# Figure 5: Vegas with ACK thinning vs. plain Vegas α = 2
# ----------------------------------------------------------------------
def vegas_thinning_study(
    base_config: ScenarioConfig,
    hop_counts: Sequence[int],
    thinning_alphas: Sequence[float] = (2.0, 3.0, 4.0),
    runner: Optional[StudyRunner] = None,
) -> Dict[str, Dict[int, ScenarioResult]]:
    """Vegas (α=2) vs. Vegas + ACK thinning for α ∈ {2,3,4} (Figure 5).

    Returns:
        ``results[label][hops]``; labels are ``"Vegas α=2"`` and
        ``"Vegas α=<a> ACK Thinning"``.
    """
    plain = SweepSpec(
        name="vegas-plain-vs-hops",
        topology="chain",
        axes={"hops": hop_counts},
        base=replace(base_config, variant=TransportVariant.VEGAS, vegas_alpha=2.0),
    )
    thinning = SweepSpec(
        name="vegas-thinning-vs-hops",
        topology="chain",
        axes={"vegas_alpha": thinning_alphas, "hops": hop_counts},
        base=replace(base_config, variant=TransportVariant.VEGAS_ACK_THINNING),
    )
    results: Dict[str, Dict[int, ScenarioResult]] = {
        "Vegas α=2": _execute(plain, runner).nested("hops", leaf=lambda p: p.run)
    }
    by_alpha = _execute(thinning, runner).nested(
        "vegas_alpha", "hops", leaf=lambda p: p.run
    )
    for alpha in thinning_alphas:
        results[f"Vegas α={alpha:g} ACK Thinning"] = by_alpha[alpha]
    return results


# ----------------------------------------------------------------------
# Figures 6-9: protocol comparison vs. number of hops at 2 Mbit/s
# ----------------------------------------------------------------------
DEFAULT_CHAIN_VARIANTS: Tuple[TransportVariant, ...] = (
    TransportVariant.VEGAS,
    TransportVariant.NEWRENO,
    TransportVariant.NEWRENO_ACK_THINNING,
    TransportVariant.PACED_UDP,
)


def protocol_comparison_vs_hops(
    base_config: ScenarioConfig,
    hop_counts: Sequence[int],
    variants: Sequence[TransportVariant] = DEFAULT_CHAIN_VARIANTS,
    runner: Optional[StudyRunner] = None,
) -> Dict[TransportVariant, Dict[int, ScenarioResult]]:
    """One run per (variant, hop count) on the 2 Mbit/s chain.

    A single scenario run yields all four measures of Figures 6-9 (goodput,
    retransmissions, average window, false route failures), so the same result
    dictionary backs all four benches.

    Returns:
        ``results[variant][hops]`` → :class:`ScenarioResult`.
    """
    spec = SweepSpec(
        name="protocol-comparison-vs-hops",
        topology="chain",
        axes={"variant": variants, "hops": hop_counts},
        base=base_config,
    )
    return _execute(spec, runner).nested("variant", "hops", leaf=lambda p: p.run)


# ----------------------------------------------------------------------
# Figure 10: paced UDP goodput vs. inter-packet transmission time
# ----------------------------------------------------------------------
def paced_udp_rate_sweep(
    base_config: ScenarioConfig,
    intervals: Sequence[float],
    hops: int = 7,
    runner: Optional[StudyRunner] = None,
) -> Dict[float, ScenarioResult]:
    """Sweep the paced-UDP inter-packet time *t* on the 7-hop chain (Figure 10).

    Returns:
        ``results[t]`` → :class:`ScenarioResult`, for each interval in seconds.
    """
    spec = SweepSpec(
        name="paced-udp-rate-sweep",
        topology="chain",
        topology_params={"hops": hops},
        axes={"udp_interval": intervals},
        base=replace(base_config, variant=TransportVariant.PACED_UDP),
    )
    return _execute(spec, runner).nested("udp_interval", leaf=lambda p: p.run)


def default_sweep_intervals(
    bandwidth_mbps: float, points: int = 7, spread: float = 0.45
) -> List[float]:
    """Sweep grid around the analytic pacing interval for a bandwidth.

    Mirrors the paper's Figure 10 x-axis (28-44 ms at 2 Mbit/s): ``points``
    evenly spaced intervals within ±``spread`` of the default interval.
    """
    center = default_udp_interval(timing_for_bandwidth(bandwidth_mbps))
    low = center * (1.0 - spread)
    high = center * (1.0 + spread)
    if points < 2:
        return [center]
    step = (high - low) / (points - 1)
    return [low + i * step for i in range(points)]


def find_optimal_udp_interval(
    base_config: ScenarioConfig,
    hops: int = 7,
    intervals: Optional[Sequence[float]] = None,
    runner: Optional[StudyRunner] = None,
) -> Tuple[float, Dict[float, ScenarioResult]]:
    """Offline search for the goodput-maximizing pacing interval (Section 4.2).

    Returns:
        ``(best_interval, sweep_results)``.
    """
    if intervals is None:
        intervals = default_sweep_intervals(base_config.bandwidth_mbps)
    sweep = paced_udp_rate_sweep(base_config, intervals, hops=hops, runner=runner)
    best = max(sweep, key=lambda t: sweep[t].aggregate_goodput_bps)
    return best, sweep
