"""7-hop chain bandwidth experiments (Figures 11-14 and Table 2 context).

The paper's fourth chain experiment compares TCP NewReno, TCP Vegas, both with
ACK thinning, TCP NewReno with an artificially bounded ("optimal") window of
MaxWin = 3, and paced UDP on a 7-hop chain at 2, 5.5 and 11 Mbit/s.  A single
scenario run per (variant, bandwidth) provides all four reported measures:
goodput (Fig. 11), transport retransmissions (Fig. 12), average window
(Fig. 13) and link-layer drop probability (Fig. 14).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.config import PAPER_BANDWIDTHS, ScenarioConfig, TransportVariant
from repro.experiments.results import ScenarioResult
from repro.experiments.study import StudyRunner, SweepSpec

#: The variant line-up of Figures 11-14, in the paper's legend order.
DEFAULT_BANDWIDTH_VARIANTS: Tuple[TransportVariant, ...] = (
    TransportVariant.VEGAS,
    TransportVariant.NEWRENO,
    TransportVariant.VEGAS_ACK_THINNING,
    TransportVariant.NEWRENO_ACK_THINNING,
    TransportVariant.NEWRENO_OPTIMAL_WINDOW,
    TransportVariant.PACED_UDP,
)

#: The optimal NewReno window the paper derives for the 7-hop chain
#: (MaxWin = 3, following Fu et al.).
SEVEN_HOP_OPTIMAL_WINDOW = 3.0


def seven_hop_bandwidth_comparison(
    base_config: ScenarioConfig,
    bandwidths: Sequence[float] = PAPER_BANDWIDTHS,
    variants: Sequence[TransportVariant] = DEFAULT_BANDWIDTH_VARIANTS,
    hops: int = 7,
    runner: Optional[StudyRunner] = None,
) -> Dict[TransportVariant, Dict[float, ScenarioResult]]:
    """Run every (variant, bandwidth) combination on the 7-hop chain.

    Returns:
        ``results[variant][bandwidth_mbps]`` → :class:`ScenarioResult`.
    """
    spec = SweepSpec(
        name="seven-hop-bandwidth-comparison",
        topology="chain",
        topology_params={"hops": hops},
        axes={"variant": variants, "bandwidth_mbps": bandwidths},
        base=base_config,
        variant_overrides={
            "newreno-optwin": {"newreno_max_cwnd": SEVEN_HOP_OPTIMAL_WINDOW},
        },
    )
    study = (runner or StudyRunner()).run(spec)
    return study.nested("variant", "bandwidth_mbps", leaf=lambda p: p.run)
