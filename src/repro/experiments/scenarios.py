"""Named scenario presets, generated from the transport/topology registries.

A registry of ready-made (topology, config) pairs for the scenarios the paper
evaluates, so examples, notebooks and ad-hoc exploration can run a standard
setup by name::

    from repro.experiments.scenarios import build_named_scenario

    result = build_named_scenario("chain7-vegas-2mbps", packet_target=300).run()

The preset table is derived from the transport, topology and mobility
registries: every registered transport variant automatically gets a
``chain7-<variant>-<bw>``, ``grid-<variant>-<bw>`` and ``random-<variant>-<bw>``
entry per paper bandwidth, using the variant's ``preset_overrides`` (e.g. the
window clamp the "optimal window" variant needs); every mobility profile with
a ``preset_tag`` additionally gets a mobile twin of each of those entries
(``chain7-rwp-<variant>-<bw>``, …).  Registering a new transport or mobility
model therefore also registers its presets — no change here required.
Additional hand-written presets can be added with :func:`register_scenario`.

This module is also the scenario-catalog generator::

    PYTHONPATH=src python -m repro.experiments.scenarios --catalog -o docs/scenario-catalog.md
    PYTHONPATH=src python -m repro.experiments.scenarios --check docs/scenario-catalog.md

``--catalog`` renders every registered profile and preset as markdown;
``--check`` exits non-zero when the committed catalog is stale (used by CI).
"""

from __future__ import annotations

import difflib
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.tracing import NULL_TRACER, Tracer
from repro.experiments.config import PAPER_BANDWIDTHS, ScenarioConfig
from repro.experiments.runner import Scenario
from repro.experiments.workload import (
    FlowSpec,
    ScenarioEvent,
    ScenarioSpec,
    Workload,
)
from repro.mobility.registry import mobility_profiles
from repro.mobility.registry import registry_generation as _mobility_generation
from repro.topology.base import Topology
from repro.topology.registry import get_topology, topology_profiles
from repro.topology.registry import registry_generation as _topology_generation
from repro.transport.registry import transport_profiles
from repro.transport.registry import registry_generation as _transport_generation

#: Scenario factory type: returns either a complete
#: :class:`~repro.experiments.workload.ScenarioSpec` or the legacy
#: ``(topology, config)`` pair (compiled into a spec when built).
ScenarioFactory = Callable[[], Union[ScenarioSpec, Tuple[Topology, ScenarioConfig]]]

#: Hand-registered presets layered on top of the generated table.
_EXTRA_SCENARIOS: Dict[str, ScenarioFactory] = {}
#: Bumped on every register_scenario call (cache-invalidation stamp).
_EXTRA_GENERATION = 0


def _bandwidth_tag(bandwidth: float) -> str:
    return f"{bandwidth:g}mbps"


def _preset_factory(family: str, params: Dict[str, object], variant_name: str,
                    bandwidth: float, overrides: Dict[str, object]) -> ScenarioFactory:
    def factory() -> Tuple[Topology, ScenarioConfig]:
        topology = get_topology(family).build(**params)
        config = ScenarioConfig(variant=variant_name, bandwidth_mbps=bandwidth,
                                **overrides)
        return topology, config
    return factory


#: Memoized preset table: rebuilt only when the transport/topology/mobility
#: registries (tracked via their generation counters) or the hand-registered
#: extras change.
_PRESET_CACHE: Tuple[Tuple[int, int, int, int], Dict[str, ScenarioFactory]] = (
    (-1, -1, -1, -1), {},
)


def _generated_presets() -> Dict[str, ScenarioFactory]:
    """The preset table for the currently registered profiles.

    The returned dict is the internal cache — treat it as read-only; use
    :func:`register_scenario` to add presets.
    """
    global _PRESET_CACHE
    stamp = (_transport_generation(), _topology_generation(),
             _mobility_generation(), _EXTRA_GENERATION)
    if _PRESET_CACHE[0] == stamp:
        return _PRESET_CACHE[1]
    mobile_variants = [(m.preset_tag, m.name) for m in mobility_profiles()
                       if m.preset_tag is not None]
    presets: Dict[str, ScenarioFactory] = {}
    for profile in transport_profiles():
        for topology in topology_profiles():
            if topology.preset_prefix is None:
                continue
            for bandwidth in PAPER_BANDWIDTHS:
                name = (f"{topology.preset_prefix}-{profile.name}"
                        f"-{_bandwidth_tag(bandwidth)}")
                presets[name] = _preset_factory(
                    topology.name, dict(topology.preset_params),
                    profile.name, bandwidth, dict(profile.preset_overrides),
                )
                for tag, mobility_name in mobile_variants:
                    overrides = dict(profile.preset_overrides)
                    overrides["mobility"] = mobility_name
                    presets[
                        f"{topology.preset_prefix}-{tag}-{profile.name}"
                        f"-{_bandwidth_tag(bandwidth)}"
                    ] = _preset_factory(
                        topology.name, dict(topology.preset_params),
                        profile.name, bandwidth, overrides,
                    )
    presets.update(_EXTRA_SCENARIOS)
    _PRESET_CACHE = (stamp, presets)
    return presets


def register_scenario(name: str, factory: ScenarioFactory,
                      replace_existing: bool = False) -> None:
    """Register a custom named preset on top of the generated table.

    Raises:
        ConfigurationError: If the name collides without ``replace_existing``.
    """
    global _EXTRA_GENERATION
    if not replace_existing and name in _generated_presets():
        raise ConfigurationError(f"scenario {name!r} is already registered")
    _EXTRA_SCENARIOS[name] = factory
    _EXTRA_GENERATION += 1


# ======================================================================
# Hand-written mixed-transport presets (Workload API v2): demonstrate
# heterogeneous per-flow variants and a scripted timeline.  These register
# through the same extras layer user code uses.
# ======================================================================
def _chain7_mixed_newreno_vegas() -> ScenarioSpec:
    """7-hop chain: a NewReno flow competing with a Vegas flow that enters
    the run mid-flight through a timeline ``flow-start`` event."""
    topology = get_topology("chain").build(hops=7)
    return ScenarioSpec(
        name="chain7-mixed",
        topology=topology,
        workload=Workload(flows=(
            FlowSpec(source=0, destination=7, variant="newreno"),
            FlowSpec(source=0, destination=7, variant="vegas", label="latecomer"),
        )),
        config=ScenarioConfig(variant="newreno", bandwidth_mbps=2.0),
        timeline=(ScenarioEvent.flow_start(5.0, flow=2),),
    )


def _random50_tcp_with_udp_background() -> ScenarioSpec:
    """50-node random topology: four NewReno foreground flows over a paced-UDP
    background flow that starts first (classic coexistence stress)."""
    from repro.topology.random_topology import random_topology

    topology = random_topology(node_count=50, area=(1300.0, 800.0),
                               flow_count=5, seed=11)
    endpoints = topology.flow_endpoints()
    flows = [FlowSpec(source=s, destination=d, variant="newreno")
             for s, d in endpoints[:-1]]
    flows.append(FlowSpec(source=endpoints[-1][0], destination=endpoints[-1][1],
                          variant="paced-udp", start_time=0.0,
                          label="udp-background"))
    return ScenarioSpec(
        name="random50-tcp-with-udp-background",
        topology=topology,
        workload=Workload(flows=tuple(flows)),
        config=ScenarioConfig(variant="newreno", bandwidth_mbps=2.0,
                              max_sim_time=300.0),
    )


def city_scenario_spec(
    mobility: str = "random-waypoint",
    node_count: int = 1000,
    seed: int = 1,
    flow_count: Optional[int] = None,
) -> ScenarioSpec:
    """A city-scale mobile mesh spec: random metro field, NewReno flows.

    The placement comes from
    :func:`repro.topology.random_topology.city_topology` (paper node density,
    area scaled with ``sqrt(node_count/1000)``) and the flows are lifted into
    an explicit Workload API v2 flow list; only the channel's grid spatial
    index and lazy cache invalidation make populations of this size tractable.
    ``mobility`` selects any registered mobile profile — the shipped presets
    use ``random-waypoint`` and ``manhattan``.  Above 1000 nodes the spec
    turns on expanding-ring AODV search so route discoveries stop flooding
    the full 10k-node diameter; at 1000 and below everything stays
    byte-identical to the original ``city1k`` presets.

    Args:
        mobility: Registered mobility-profile name.
        node_count: Mesh size (1000 for the ``city1k`` presets, 10000 for
            ``city10k``).
        seed: Placement/flow seed.
        flow_count: Concurrent flows; ``None`` keeps the city default (10).
    """
    from repro.topology.random_topology import city_topology

    topology_kwargs = {} if flow_count is None else {"flow_count": flow_count}
    topology = city_topology(node_count=node_count, seed=seed,
                             **topology_kwargs)
    return ScenarioSpec(
        name=f"city{node_count}-{mobility}",
        topology=topology,
        workload=Workload.from_topology(topology, variant="newreno"),
        config=ScenarioConfig(
            variant="newreno",
            bandwidth_mbps=2.0,
            mobility=mobility,
            # One update per simulated second: at pedestrian/vehicular speeds
            # nodes move a few metres between updates, far below the 250 m
            # transmission range, and the grid re-buckets only cell crossers.
            mobility_update_interval=1.0,
            max_sim_time=300.0,
            aodv_expanding_ring=node_count > 1000,
        ),
    )


def backbone_scenario_spec(variant: str = "newreno", cells: int = 2,
                           cell_hops: int = 7) -> ScenarioSpec:
    """A heterogeneous backbone spec: wired gateway spine, wireless cells.

    The topology (:func:`repro.topology.backbone.backbone_topology`) carries
    its own link plan, so the runner builds gateways and the spine bus
    regardless of ``config.link_layer``.  Routing is static: plain AODV at a
    cell member cannot discover a destination behind the wired spine (route
    requests do not cross subnets), which is exactly the addressing split
    :mod:`repro.link.gateway` documents.

    Args:
        variant: Transport variant every flow runs.
        cells: Gateways (= wireless cells) on the spine.
        cell_hops: Wireless hops from each gateway to its cell's tail.
    """
    from repro.topology.backbone import backbone_topology

    topology = backbone_topology(cells=cells, cell_hops=cell_hops)
    return ScenarioSpec(
        name=f"backbone{cells}x{cell_hops}-{variant}",
        topology=topology,
        workload=Workload.from_topology(topology, variant=variant),
        config=ScenarioConfig(variant=variant, bandwidth_mbps=2.0,
                              routing="static", max_sim_time=600.0),
    )


def _backbone2x7_mixed_newreno_vegas() -> ScenarioSpec:
    """Backbone with one NewReno and one Vegas flow crossing the spine in
    opposite directions — the variant-mix counterpart of ``chain7-mixed``."""
    from repro.topology.backbone import backbone_tail, backbone_topology

    topology = backbone_topology(cells=2, cell_hops=7)
    tail0 = backbone_tail(2, 7, 0)
    tail1 = backbone_tail(2, 7, 1)
    return ScenarioSpec(
        name="backbone2x7-mixed",
        topology=topology,
        workload=Workload(flows=(
            FlowSpec(source=tail0, destination=tail1, variant="newreno"),
            FlowSpec(source=tail1, destination=tail0, variant="vegas"),
        )),
        config=ScenarioConfig(variant="newreno", bandwidth_mbps=2.0,
                              routing="static", max_sim_time=600.0),
    )


register_scenario("chain7-mixed-newreno-vegas", _chain7_mixed_newreno_vegas)
register_scenario("backbone2x7-newreno",
                  lambda: backbone_scenario_spec("newreno"))
register_scenario("backbone2x7-vegas",
                  lambda: backbone_scenario_spec("vegas"))
register_scenario("backbone2x7-mixed-newreno-vegas",
                  _backbone2x7_mixed_newreno_vegas)
register_scenario("random50-tcp-with-udp-background",
                  _random50_tcp_with_udp_background)
register_scenario("city1k-rwp", lambda: city_scenario_spec("random-waypoint"))
register_scenario("city1k-manhattan", lambda: city_scenario_spec("manhattan"))
register_scenario(
    "city10k-rwp",
    lambda: city_scenario_spec("random-waypoint", node_count=10_000))
register_scenario(
    "city10k-manhattan",
    lambda: city_scenario_spec("manhattan", node_count=10_000))
register_scenario(
    "city10k-rwp-1000flows",
    lambda: city_scenario_spec("random-waypoint", node_count=10_000,
                               flow_count=1000))


#: Snapshot (a copy) of the preset table at import time, kept for backwards
#: compatibility.  Prefer :func:`available_scenarios` /
#: :func:`register_scenario`: this snapshot neither reflects transports
#: registered later nor feeds lookups if mutated.
SCENARIOS: Dict[str, ScenarioFactory] = dict(_generated_presets())


def available_scenarios() -> List[str]:
    """Sorted list of all registered scenario names."""
    return sorted(_generated_presets())


def build_named_scenario(
    name: str,
    tracer: Tracer = NULL_TRACER,
    **config_overrides,
) -> Scenario:
    """Build a ready-to-run :class:`Scenario` by preset name.

    Args:
        name: One of :func:`available_scenarios`.
        tracer: Optional tracer shared by every component of the scenario.
        **config_overrides: Fields of :class:`ScenarioConfig` to override
            (e.g. ``packet_target=500``, ``seed=7``).

    Raises:
        ConfigurationError: If the name is unknown (the message suggests
            close matches).
    """
    factory = _generated_presets().get(name)
    if factory is None:
        suggestions = difflib.get_close_matches(
            name, available_scenarios(), n=3, cutoff=0.5)
        hint = (f"; did you mean {', '.join(repr(s) for s in suggestions)}?"
                if suggestions else "")
        raise ConfigurationError(
            f"unknown scenario {name!r}{hint} "
            f"(run `python -m repro.experiments.runner --list` for all "
            f"{len(available_scenarios())} presets)"
        )
    built = factory()
    if isinstance(built, ScenarioSpec):
        spec = built.with_config(**config_overrides) if config_overrides else built
        return Scenario(spec, tracer=tracer)
    topology, config = built
    if config_overrides:
        config = replace(config, **config_overrides)
    return Scenario(topology, config, tracer=tracer)


# ======================================================================
# Scenario catalog: markdown rendering and the freshness-check CLI
# ======================================================================
def _markdown_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def _format_params(params: Dict[str, object]) -> str:
    if not params:
        return "—"
    return ", ".join(f"`{key}={value!r}`" for key, value in sorted(params.items()))


def catalog_markdown() -> str:
    """Render every registered profile and preset as a markdown catalog.

    The output is deterministic (sorted, no timestamps) so the committed
    ``docs/scenario-catalog.md`` can be diffed against a fresh render; CI
    fails when they differ.
    """
    from repro.topology.registry import topology_profiles as _topologies
    from repro.transport.registry import transport_profiles as _transports

    lines: List[str] = [
        "# Scenario catalog",
        "",
        "All registered transport variants, topology families, mobility models",
        "and the scenario presets generated from them.",
        "",
        "> **Generated file — do not edit.**  Regenerate with",
        "> `PYTHONPATH=src python -m repro.experiments.scenarios --catalog -o docs/scenario-catalog.md`",
        "> after registering new profiles; CI fails when this file is stale.",
        "",
        "## Transport variants",
        "",
    ]
    lines.extend(_markdown_table(
        ["name", "label", "aliases", "preset overrides"],
        [[f"`{p.name}`", p.label,
          ", ".join(f"`{alias}`" for alias in p.aliases) or "—",
          _format_params(dict(p.preset_overrides))]
         for p in _transports()],
    ))
    lines += ["", "## Topology families", ""]
    lines.extend(_markdown_table(
        ["name", "description", "preset prefix", "preset params"],
        [[f"`{p.name}`", p.description or "—",
          f"`{p.preset_prefix}`" if p.preset_prefix else "—",
          _format_params(dict(p.preset_params))]
         for p in _topologies()],
    ))
    lines += ["", "## Mobility models", ""]
    lines.extend(_markdown_table(
        ["name", "description", "preset tag", "default speed (m/s)",
         "default pause (s)"],
        [[f"`{p.name}`", p.description or "—",
          f"`{p.preset_tag}`" if p.preset_tag else "—",
          f"{p.default_speed:g}", f"{p.default_pause:g}"]
         for p in mobility_profiles()],
    ))
    presets = _generated_presets()
    lines += [
        "",
        f"## Scenario presets ({len(presets)} total)",
        "",
        "Naming scheme: `<topology-prefix>[-<mobility-tag>]-<transport>-<bandwidth>`;",
        "build one with `build_named_scenario(name)`.",
        "",
    ]
    extras = sorted(_EXTRA_SCENARIOS)
    generated = sorted(name for name in presets if name not in _EXTRA_SCENARIOS)
    groups: Dict[str, List[str]] = {}
    for topology in _topologies():
        if topology.preset_prefix is None:
            continue
        groups[f"{topology.preset_prefix} (static)"] = []
        for mobility in mobility_profiles():
            if mobility.preset_tag is not None:
                groups[f"{topology.preset_prefix}-{mobility.preset_tag} "
                       f"({mobility.name})"] = []
    for name in generated:
        prefix, tag = name.split("-")[0], name.split("-")[1]
        key = next(
            (group for group in groups
             if group.startswith(f"{prefix}-{tag} ")), f"{prefix} (static)",
        )
        groups.setdefault(key, []).append(name)
    for group in sorted(groups):
        names = groups[group]
        lines += [f"### {group} — {len(names)} presets", ""]
        lines.append(", ".join(f"`{name}`" for name in names) or "—")
        lines.append("")
    if extras:
        lines += [f"### hand-registered — {len(extras)} presets", ""]
        lines.append(", ".join(f"`{name}`" for name in extras))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: list, render or freshness-check the scenario catalog."""
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.scenarios",
        description="List scenario presets or (re)generate the markdown catalog.",
    )
    parser.add_argument("--catalog", action="store_true",
                        help="render the markdown catalog instead of the name list")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="write the catalog to this file instead of stdout")
    parser.add_argument("--check", type=Path, default=None, metavar="PATH",
                        help="exit 1 if PATH differs from a fresh catalog render")
    args = parser.parse_args(argv)

    if args.check is not None:
        expected = catalog_markdown()
        actual = args.check.read_text() if args.check.is_file() else None
        if actual != expected:
            print(f"{args.check} is stale; regenerate with:\n"
                  "  PYTHONPATH=src python -m repro.experiments.scenarios "
                  f"--catalog -o {args.check}")
            return 1
        print(f"{args.check} is up to date")
        return 0
    if args.catalog:
        markdown = catalog_markdown()
        if args.output is not None:
            from repro.core.io import atomic_write_text

            atomic_write_text(args.output, markdown)
            print(f"wrote {args.output}")
        else:
            print(markdown, end="")
        return 0
    for name in available_scenarios():
        print(name)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    import sys

    sys.exit(main())
