"""Named scenario presets, generated from the transport/topology registries.

A registry of ready-made (topology, config) pairs for the scenarios the paper
evaluates, so examples, notebooks and ad-hoc exploration can run a standard
setup by name::

    from repro.experiments.scenarios import build_named_scenario

    result = build_named_scenario("chain7-vegas-2mbps", packet_target=300).run()

The preset table is derived from :mod:`repro.transport.registry`: every
registered transport variant automatically gets a ``chain7-<variant>-<bw>``,
``grid-<variant>-<bw>`` and ``random-<variant>-<bw>`` entry per paper
bandwidth, using the variant's ``preset_overrides`` (e.g. the window clamp the
"optimal window" variant needs).  Registering a new transport therefore also
registers its presets — no change here required.  Additional hand-written
presets can be added with :func:`register_scenario`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Tuple

from repro.core.errors import ConfigurationError
from repro.core.tracing import NULL_TRACER, Tracer
from repro.experiments.config import PAPER_BANDWIDTHS, ScenarioConfig
from repro.experiments.runner import Scenario
from repro.topology.base import Topology
from repro.topology.registry import get_topology, topology_profiles
from repro.topology.registry import registry_generation as _topology_generation
from repro.transport.registry import transport_profiles
from repro.transport.registry import registry_generation as _transport_generation

#: Scenario factory type: returns (topology, config).
ScenarioFactory = Callable[[], Tuple[Topology, ScenarioConfig]]

#: Hand-registered presets layered on top of the generated table.
_EXTRA_SCENARIOS: Dict[str, ScenarioFactory] = {}
#: Bumped on every register_scenario call (cache-invalidation stamp).
_EXTRA_GENERATION = 0


def _bandwidth_tag(bandwidth: float) -> str:
    return f"{bandwidth:g}mbps"


def _preset_factory(family: str, params: Dict[str, object], variant_name: str,
                    bandwidth: float, overrides: Dict[str, object]) -> ScenarioFactory:
    def factory() -> Tuple[Topology, ScenarioConfig]:
        topology = get_topology(family).build(**params)
        config = ScenarioConfig(variant=variant_name, bandwidth_mbps=bandwidth,
                                **overrides)
        return topology, config
    return factory


#: Memoized preset table: rebuilt only when the transport/topology registries
#: (tracked via their generation counters) or the hand-registered extras
#: change.
_PRESET_CACHE: Tuple[Tuple[int, int, int], Dict[str, ScenarioFactory]] = (
    (-1, -1, -1), {},
)


def _generated_presets() -> Dict[str, ScenarioFactory]:
    """The preset table for the currently registered transports/topologies.

    The returned dict is the internal cache — treat it as read-only; use
    :func:`register_scenario` to add presets.
    """
    global _PRESET_CACHE
    stamp = (_transport_generation(), _topology_generation(), _EXTRA_GENERATION)
    if _PRESET_CACHE[0] == stamp:
        return _PRESET_CACHE[1]
    presets: Dict[str, ScenarioFactory] = {}
    for profile in transport_profiles():
        for topology in topology_profiles():
            if topology.preset_prefix is None:
                continue
            for bandwidth in PAPER_BANDWIDTHS:
                name = (f"{topology.preset_prefix}-{profile.name}"
                        f"-{_bandwidth_tag(bandwidth)}")
                presets[name] = _preset_factory(
                    topology.name, dict(topology.preset_params),
                    profile.name, bandwidth, dict(profile.preset_overrides),
                )
    presets.update(_EXTRA_SCENARIOS)
    _PRESET_CACHE = (stamp, presets)
    return presets


def register_scenario(name: str, factory: ScenarioFactory,
                      replace_existing: bool = False) -> None:
    """Register a custom named preset on top of the generated table.

    Raises:
        ConfigurationError: If the name collides without ``replace_existing``.
    """
    global _EXTRA_GENERATION
    if not replace_existing and name in _generated_presets():
        raise ConfigurationError(f"scenario {name!r} is already registered")
    _EXTRA_SCENARIOS[name] = factory
    _EXTRA_GENERATION += 1


#: Snapshot (a copy) of the preset table at import time, kept for backwards
#: compatibility.  Prefer :func:`available_scenarios` /
#: :func:`register_scenario`: this snapshot neither reflects transports
#: registered later nor feeds lookups if mutated.
SCENARIOS: Dict[str, ScenarioFactory] = dict(_generated_presets())


def available_scenarios() -> List[str]:
    """Sorted list of all registered scenario names."""
    return sorted(_generated_presets())


def build_named_scenario(
    name: str,
    tracer: Tracer = NULL_TRACER,
    **config_overrides,
) -> Scenario:
    """Build a ready-to-run :class:`Scenario` by preset name.

    Args:
        name: One of :func:`available_scenarios`.
        tracer: Optional tracer shared by every component of the scenario.
        **config_overrides: Fields of :class:`ScenarioConfig` to override
            (e.g. ``packet_target=500``, ``seed=7``).

    Raises:
        ConfigurationError: If the name is unknown.
    """
    factory = _generated_presets().get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        )
    topology, config = factory()
    if config_overrides:
        config = replace(config, **config_overrides)
    return Scenario(topology, config, tracer=tracer)
