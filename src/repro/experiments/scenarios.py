"""Named scenario presets.

A small registry of ready-made (topology, config) pairs for the scenarios the
paper evaluates, so examples, notebooks and ad-hoc exploration can run a
standard setup by name::

    from repro.experiments.scenarios import build_named_scenario

    result = build_named_scenario("chain7-vegas-2mbps", packet_target=300).run()
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Tuple

from repro.core.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig, TransportVariant
from repro.experiments.runner import Scenario
from repro.topology.base import Topology
from repro.topology.chain import chain_topology
from repro.topology.grid import grid_topology
from repro.topology.random_topology import random_topology

#: Scenario factory type: returns (topology, config).
ScenarioFactory = Callable[[], Tuple[Topology, ScenarioConfig]]


def _chain(variant: TransportVariant, hops: int, bandwidth: float) -> ScenarioFactory:
    def factory() -> Tuple[Topology, ScenarioConfig]:
        return chain_topology(hops=hops), ScenarioConfig(
            variant=variant, bandwidth_mbps=bandwidth,
            newreno_max_cwnd=3.0 if variant is TransportVariant.NEWRENO_OPTIMAL_WINDOW else None,
        )
    return factory


def _grid(variant: TransportVariant, bandwidth: float) -> ScenarioFactory:
    def factory() -> Tuple[Topology, ScenarioConfig]:
        return grid_topology(), ScenarioConfig(variant=variant, bandwidth_mbps=bandwidth)
    return factory


def _random(variant: TransportVariant, bandwidth: float) -> ScenarioFactory:
    def factory() -> Tuple[Topology, ScenarioConfig]:
        topology = random_topology(node_count=120, area=(2500.0, 1000.0),
                                   flow_count=10, seed=7)
        return topology, ScenarioConfig(variant=variant, bandwidth_mbps=bandwidth)
    return factory


#: The named presets.  Chain scenarios use the paper's focal 7-hop chain.
SCENARIOS: Dict[str, ScenarioFactory] = {}


def _register_presets() -> None:
    for variant, tag in (
        (TransportVariant.VEGAS, "vegas"),
        (TransportVariant.NEWRENO, "newreno"),
        (TransportVariant.VEGAS_ACK_THINNING, "vegas-at"),
        (TransportVariant.NEWRENO_ACK_THINNING, "newreno-at"),
        (TransportVariant.NEWRENO_OPTIMAL_WINDOW, "newreno-optwin"),
        (TransportVariant.PACED_UDP, "paced-udp"),
    ):
        for bandwidth, btag in ((2.0, "2mbps"), (5.5, "5.5mbps"), (11.0, "11mbps")):
            SCENARIOS[f"chain7-{tag}-{btag}"] = _chain(variant, hops=7, bandwidth=bandwidth)
    for variant, tag in (
        (TransportVariant.VEGAS, "vegas"),
        (TransportVariant.NEWRENO, "newreno"),
        (TransportVariant.VEGAS_ACK_THINNING, "vegas-at"),
        (TransportVariant.NEWRENO_ACK_THINNING, "newreno-at"),
    ):
        for bandwidth, btag in ((2.0, "2mbps"), (5.5, "5.5mbps"), (11.0, "11mbps")):
            SCENARIOS[f"grid-{tag}-{btag}"] = _grid(variant, bandwidth)
            SCENARIOS[f"random-{tag}-{btag}"] = _random(variant, bandwidth)


_register_presets()


def available_scenarios() -> List[str]:
    """Sorted list of all registered scenario names."""
    return sorted(SCENARIOS)


def build_named_scenario(name: str, **config_overrides) -> Scenario:
    """Build a ready-to-run :class:`Scenario` by preset name.

    Args:
        name: One of :func:`available_scenarios`.
        **config_overrides: Fields of :class:`ScenarioConfig` to override
            (e.g. ``packet_target=500``, ``seed=7``).

    Raises:
        ConfigurationError: If the name is unknown.
    """
    factory = SCENARIOS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        )
    topology, config = factory()
    if config_overrides:
        config = replace(config, **config_overrides)
    return Scenario(topology, config)
