"""Declarative parameter studies with a parallel, cached executor.

The paper's whole evaluation is one large parameter sweep: transport variants
× bandwidths × topologies × hop counts × Vegas α.  This module expresses such
sweeps as *data* instead of bespoke nested loops:

* :class:`SweepSpec` describes a cartesian sweep — a topology family (from
  :mod:`repro.topology.registry`), axes of scenario/topology parameters and a
  number of seed replications.
* :class:`StudyRunner` executes every sweep point, optionally fanning the
  points out over a :class:`concurrent.futures.ProcessPoolExecutor` and
  caching each finished :class:`~repro.experiments.results.ScenarioResult`
  as JSON keyed by a configuration hash.
* :class:`StudyResult` aggregates the per-seed results into cross-seed
  confidence intervals and round-trips through JSON.

Quickstart::

    from repro.experiments.study import SweepSpec, run_study

    spec = SweepSpec(
        name="goodput-vs-hops",
        topology="chain",
        axes={"variant": ["vegas", "newreno"], "hops": [2, 4, 8]},
        base=ScenarioConfig(packet_target=250),
        replications=3,
    )
    study = run_study(spec, parallel=True)
    for point in study.points:
        print(point.values, point.goodput_interval)

Axis keys that are :class:`~repro.experiments.config.ScenarioConfig` fields
override the base config; keys prefixed ``workload.`` are stripped and passed
to the sweep's ``workload_factory`` (so traffic mixes are sweepable, e.g.
``axes={"workload.secondary_flows": [0, 1, 2]}`` with
:func:`~repro.experiments.workload.mixed_transport_workload` sweeps the
number of Vegas flows competing with NewReno); every other key is passed to
the topology builder (so ``hops`` reaches
:func:`repro.topology.chain.chain_topology`).  Seeds are never an axis:
replication ``r`` runs with ``base_seed + r``, which makes a
single-replication study bit-identical to a direct ``run_scenario`` call with
the base config's seed.

Parallel execution requires every sweep point to be picklable and every
referenced transport/topology to be registered at import time of a module the
worker processes also import (the built-ins always are); dynamically
registered variants are available in serial runs regardless.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.statistics import ConfidenceInterval, confidence_interval
from repro.core.tracing import NULL_TRACER, Tracer
from repro.experiments.config import ScenarioConfig, resolve_variant
from repro.experiments.results import ScenarioResult
from repro.experiments.runner import run_scenario
from repro.experiments.workload import ScenarioEvent, ScenarioSpec, Workload
from repro.topology.base import Topology
from repro.topology.registry import build_topology, get_topology
from repro.transport.registry import transport_key

#: ScenarioConfig field names; axis keys in this set override the config.
#: Axis keys prefixed ``workload.`` are passed to the sweep's workload
#: factory; every other axis key is passed to the topology builder.
_CONFIG_FIELDS = frozenset(ScenarioConfig.__dataclass_fields__)

#: Axis-key prefix marking workload-factory parameters.
_WORKLOAD_AXIS_PREFIX = "workload."

#: Factory building a :class:`Workload` for one sweep point; must be a
#: module-level callable (pickled by reference for the process pool).  It
#: receives the point's topology plus the stripped ``workload.*`` axis values.
WorkloadFactory = Callable[..., Workload]

#: Bumped on cache *format* changes; cached-result *content* staleness is
#: handled by :func:`_code_fingerprint`, which keys every cache entry to the
#: package sources so that simulation-code edits miss the cache automatically.
_CACHE_SCHEMA = 1

_CODE_FINGERPRINT: Optional[str] = None


def _code_fingerprint() -> str:
    """Digest of every ``repro`` source file (computed once per process)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).resolve().parent
        for source in sorted(root.rglob("*.py")):
            digest.update(str(source.relative_to(root)).encode("utf-8"))
            digest.update(source.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def _jsonable(value: object) -> object:
    """Recursively convert a value into JSON-serializable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: an index plus its axis values."""

    index: int
    values: Mapping[str, object]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative cartesian parameter sweep.

    Attributes:
        name: Study name (used in result files and reports).
        topology: Topology family name (resolved through
            :mod:`repro.topology.registry`) or a prebuilt
            :class:`~repro.topology.base.Topology` shared by every point
            (e.g. one fixed random placement, as in the paper's Section
            4.4.2).
        topology_params: Builder parameters common to every point.
        axes: Ordered mapping from axis name to the values it sweeps.
            Config-field axes override ``base``; axes prefixed ``workload.``
            are stripped and passed to ``workload_factory``; all other axes
            are topology builder parameters.  ``seed`` may not be an axis —
            use ``replications``.
        base: Baseline :class:`ScenarioConfig` every point starts from.
        variant_overrides: Per-variant config overrides (keyed by any variant
            spelling) applied when that variant is the point's variant —
            e.g. ``{"newreno-optwin": {"newreno_max_cwnd": 3.0}}``.  Axis
            values take precedence over these.
        workload: Fixed per-flow :class:`~repro.experiments.workload.Workload`
            shared by every point (its flows must match whatever topology the
            points build).  Mutually exclusive with ``workload_factory``.
        workload_factory: Module-level callable
            ``factory(topology, **workload_params)`` building each point's
            workload, e.g.
            :func:`~repro.experiments.workload.mixed_transport_workload`;
            required when ``workload.*`` axes are swept.
        workload_params: Factory parameters common to every point.
        timeline: :class:`~repro.experiments.workload.ScenarioEvent` timeline
            applied to every point's scenario.
        replications: Independent seeds per sweep point.
        base_seed: Seed of replication 0 (defaults to ``base.seed``);
            replication ``r`` uses ``base_seed + r``.
    """

    name: str = "study"
    topology: Union[str, Topology] = "chain"
    topology_params: Mapping[str, object] = field(default_factory=dict)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    variant_overrides: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    workload: Optional[Workload] = None
    workload_factory: Optional[WorkloadFactory] = None
    workload_params: Mapping[str, object] = field(default_factory=dict)
    timeline: Tuple[ScenarioEvent, ...] = ()
    replications: int = 1
    base_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ConfigurationError("replications must be at least 1")
        for axis, values in self.axes.items():
            if axis == "seed":
                raise ConfigurationError(
                    "'seed' may not be an axis; use replications/base_seed"
                )
            if not list(values):
                raise ConfigurationError(f"axis {axis!r} has no values")
        if isinstance(self.topology, str):
            get_topology(self.topology)  # fail fast on unknown families
        elif self.topology_axes:
            raise ConfigurationError(
                "topology axes "
                f"{sorted(self.topology_axes)} require a topology family name, "
                "not a prebuilt Topology"
            )
        if self.workload is not None and self.workload_factory is not None:
            raise ConfigurationError(
                "pass either a fixed workload or a workload_factory, not both"
            )
        if self.workload_axes and self.workload_factory is None:
            raise ConfigurationError(
                f"workload axes {sorted(self.workload_axes)} require a "
                "workload_factory"
            )
        if (self.workload_params and self.workload_factory is None):
            raise ConfigurationError("workload_params require a workload_factory")
        object.__setattr__(self, "timeline", tuple(self.timeline))
        for variant in self.variant_overrides:
            transport_key(variant)  # fail fast on unknown variants

    # ------------------------------------------------------------------
    # Sweep structure
    # ------------------------------------------------------------------
    @property
    def axis_names(self) -> Tuple[str, ...]:
        """Axis names in declaration order."""
        return tuple(self.axes)

    @property
    def config_axes(self) -> Tuple[str, ...]:
        """Axes that override :class:`ScenarioConfig` fields."""
        return tuple(a for a in self.axes if a in _CONFIG_FIELDS)

    @property
    def workload_axes(self) -> Tuple[str, ...]:
        """Axes passed (prefix-stripped) to the workload factory."""
        return tuple(a for a in self.axes if a.startswith(_WORKLOAD_AXIS_PREFIX))

    @property
    def topology_axes(self) -> Tuple[str, ...]:
        """Axes passed to the topology builder."""
        return tuple(a for a in self.axes
                     if a not in _CONFIG_FIELDS
                     and not a.startswith(_WORKLOAD_AXIS_PREFIX))

    def points(self) -> List[SweepPoint]:
        """All sweep points, in cartesian order (last axis fastest).

        Variant axis values are normalised (enum member for the built-ins,
        canonical registry name otherwise) so that point lookups and JSON
        round trips are spelling-independent.
        """
        names = self.axis_names
        combos = itertools.product(*(tuple(self.axes[a]) for a in names))
        points = []
        for index, combo in enumerate(combos):
            values = dict(zip(names, combo))
            if "variant" in values:
                values["variant"] = resolve_variant(values["variant"])
            points.append(SweepPoint(index=index, values=values))
        return points

    def seeds(self) -> List[int]:
        """The replication seeds: ``base_seed + r`` for each replication."""
        first = self.base.seed if self.base_seed is None else self.base_seed
        return [first + r for r in range(self.replications)]

    # ------------------------------------------------------------------
    # Point materialization
    # ------------------------------------------------------------------
    def config_for(self, values: Mapping[str, object], seed: int) -> ScenarioConfig:
        """The :class:`ScenarioConfig` of one sweep point and seed."""
        overrides: Dict[str, object] = {}
        variant = values.get("variant", self.base.variant)
        for key, extra in self.variant_overrides.items():
            if transport_key(key) == transport_key(variant):
                overrides.update(extra)
        overrides.update(
            {k: v for k, v in values.items() if k in _CONFIG_FIELDS}
        )
        overrides["seed"] = seed
        return replace(self.base, **overrides)

    def _topology_builder_params(self, values: Mapping[str, object]) -> Dict[str, object]:
        params = dict(self.topology_params)
        params.update({k: v for k, v in values.items()
                       if k not in _CONFIG_FIELDS
                       and not k.startswith(_WORKLOAD_AXIS_PREFIX)})
        return params

    def topology_for(self, values: Mapping[str, object]) -> Topology:
        """The :class:`Topology` of one sweep point."""
        if not isinstance(self.topology, str):
            return self.topology
        return build_topology(self.topology, **self._topology_builder_params(values))

    def workload_params_for(self, values: Mapping[str, object]) -> Dict[str, object]:
        """The (prefix-stripped) workload-factory parameters of one point."""
        params = dict(self.workload_params)
        params.update({
            key[len(_WORKLOAD_AXIS_PREFIX):]: value
            for key, value in values.items()
            if key.startswith(_WORKLOAD_AXIS_PREFIX)
        })
        return params

    def workload_for(self, values: Mapping[str, object],
                     topology: Topology) -> Optional[Workload]:
        """The :class:`Workload` of one sweep point (None = legacy flows)."""
        if self.workload_factory is not None:
            return self.workload_factory(topology, **self.workload_params_for(values))
        return self.workload

    def scenario_for(self, values: Mapping[str, object], seed: int) -> ScenarioSpec:
        """The complete :class:`ScenarioSpec` of one (point, seed) run."""
        topology = self.topology_for(values)
        return ScenarioSpec(
            topology=topology,
            workload=self.workload_for(values, topology),
            config=self.config_for(values, seed),
            timeline=self.timeline,
        )

    def fingerprint(self, values: Mapping[str, object], seed: int) -> str:
        """Stable cache key of one (point, seed) scenario run.

        Hashes the full scenario configuration, the topology description, the
        seed and a digest of the package sources, so any parameter or
        simulation-code change misses the cache instead of returning stale
        results.
        """
        if isinstance(self.topology, str):
            topo = {"family": self.topology,
                    "params": _jsonable(self._topology_builder_params(values))}
        else:
            topo = {"instance": _jsonable(self.topology)}
        payload = {
            "schema": _CACHE_SCHEMA,
            "code": _code_fingerprint(),
            "topology": topo,
            "config": _jsonable(self.config_for(values, seed)),
            "seed": seed,
        }
        # Workload/timeline sections are only added when used, so legacy
        # sweeps keep hitting their previously cached entries.
        if self.workload_factory is not None:
            payload["workload"] = {
                "factory": f"{self.workload_factory.__module__}."
                           f"{getattr(self.workload_factory, '__qualname__', repr(self.workload_factory))}",
                "params": _jsonable(self.workload_params_for(values)),
            }
        elif self.workload is not None:
            payload["workload"] = {"flows": _jsonable(self.workload)}
        if self.timeline:
            payload["timeline"] = _jsonable(self.timeline)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class PointResult:
    """All replications of one sweep point.

    Attributes:
        values: The point's axis values.
        seeds: Replication seeds, aligned with ``runs``.
        runs: One :class:`ScenarioResult` per replication seed.
    """

    values: Dict[str, object]
    seeds: List[int]
    runs: List[ScenarioResult]

    @property
    def run(self) -> ScenarioResult:
        """The first replication (the whole run for single-seed studies)."""
        return self.runs[0]

    @property
    def goodput_interval(self) -> ConfidenceInterval:
        """Cross-seed confidence interval of the aggregate goodput (bit/s)."""
        return confidence_interval([r.aggregate_goodput_bps for r in self.runs])

    # ------------------------------------------------------------------
    # Metric selection
    # ------------------------------------------------------------------
    def metric_values(self, pattern: str) -> List[float]:
        """Per-replication totals of the instruments matching ``pattern``.

        ``pattern`` is a shell-style wildcard over hierarchical instrument
        names (see :meth:`repro.experiments.results.ScenarioResult.metric_total`),
        so a sweep can aggregate *any* instrument the stack registers, e.g.
        ``point.metric_values("route.node*.rerrs_sent")``.
        """
        return [run.metric_total(pattern) for run in self.runs]

    def metric_interval(self, pattern: str) -> ConfidenceInterval:
        """Cross-seed confidence interval of the matched instrument total.

        Composes with :meth:`StudyResult.nested` for whole-study tables::

            study.nested("variant", "hops",
                         leaf=lambda p: p.metric_interval(
                             "mac.node*.data_dropped_retry").mean)
        """
        return confidence_interval(self.metric_values(pattern))

    @property
    def mean_goodput_bps(self) -> float:
        """Mean aggregate goodput over replications (bit/s)."""
        return self.goodput_interval.mean

    @property
    def mean_goodput_kbps(self) -> float:
        """Mean aggregate goodput over replications (kbit/s)."""
        return self.mean_goodput_bps / 1000.0

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        values = dict(self.values)
        if "variant" in values:
            values["variant"] = transport_key(values["variant"])
        return {
            "values": values,
            "seeds": list(self.seeds),
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PointResult":
        """Rebuild from :meth:`to_dict` output (axis values must be
        JSON-native; the ``variant`` axis is restored to its enum member)."""
        values = dict(data["values"])
        if "variant" in values:
            values["variant"] = resolve_variant(values["variant"])
        return cls(
            values=values,
            seeds=list(data["seeds"]),
            runs=[ScenarioResult.from_dict(r) for r in data["runs"]],
        )


@dataclass
class StudyResult:
    """The outcome of running a :class:`SweepSpec`."""

    name: str
    axis_names: Tuple[str, ...]
    replications: int
    points: List[PointResult]

    def point(self, **axis_values: object) -> PointResult:
        """The point whose axis values match ``axis_values`` exactly.

        A ``variant`` value may be given in any registered spelling (enum
        member, registry name, label); it is normalised before matching.

        Raises:
            KeyError: If no point matches.
        """
        if "variant" in axis_values:
            axis_values = dict(axis_values,
                               variant=resolve_variant(axis_values["variant"]))
        for point in self.points:
            if all(point.values.get(k) == v for k, v in axis_values.items()):
                return point
        raise KeyError(f"no sweep point matching {axis_values!r} in {self.name}")

    def nested(self, *axis_names: str, leaf=None) -> dict:
        """Reshape the flat point list into nested dicts keyed by axes.

        Args:
            *axis_names: Axes to nest by, outermost first (defaults to the
                study's axis order).
            leaf: Optional transform of the innermost :class:`PointResult`
                (e.g. ``lambda p: p.run`` for the raw first-replication
                :class:`ScenarioResult`).

        Returns:
            ``{axis0_value: {axis1_value: ... leaf(point)}}``.
        """
        names = axis_names or self.axis_names
        root: dict = {}
        for point in self.points:
            cursor = root
            for name in names[:-1]:
                cursor = cursor.setdefault(point.values[name], {})
            cursor[point.values[names[-1]]] = leaf(point) if leaf else point
        return root

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "axis_names": list(self.axis_names),
            "replications": self.replications,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StudyResult":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            axis_names=tuple(data["axis_names"]),
            replications=data["replications"],
            points=[PointResult.from_dict(p) for p in data["points"]],
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the study result as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StudyResult":
        """Read a study result previously written with :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _uses_workload_plane(spec: SweepSpec) -> bool:
    """True when the sweep needs the ScenarioSpec path (workload/timeline).

    Legacy sweeps keep running through ``run_scenario(topology, config)``,
    whose compiled spec is behaviourally identical — this is purely about not
    constructing intermediate objects on the hot path.
    """
    return (spec.workload is not None or spec.workload_factory is not None
            or bool(spec.timeline))


def _run_sweep_task(payload: Tuple[SweepSpec, Mapping[str, object], int]) -> ScenarioResult:
    """Process-pool entry point: run one (point, seed) scenario."""
    spec, values, seed = payload
    if _uses_workload_plane(spec):
        return run_scenario(spec.scenario_for(values, seed))
    return run_scenario(spec.topology_for(values), spec.config_for(values, seed))


class StudyRunner:
    """Executes :class:`SweepSpec` sweeps, optionally in parallel and cached.

    Args:
        max_workers: Process-pool size (default: ``os.cpu_count()``).
        cache_dir: Directory for the JSON result cache; ``None`` disables
            caching.  Each (point, seed) run is stored in a file named by its
            :meth:`SweepSpec.fingerprint`, so identical configurations are
            never simulated twice — across runners, processes and sessions.
        tracer: Tracer passed to serially executed scenarios.  Worker
            processes cannot share a tracer object, so parallel runs trace
            into :data:`~repro.core.tracing.NULL_TRACER`; run serially when
            traces matter.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.max_workers = max_workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_path(self, fingerprint: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{fingerprint}.json"

    def _cache_load(self, fingerprint: str) -> Optional[ScenarioResult]:
        path = self._cache_path(fingerprint)
        if path is None or not path.is_file():
            return None
        try:
            return ScenarioResult.from_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError):
            return None  # corrupt entry: fall through to a fresh run

    def _cache_store(self, fingerprint: str, result: ScenarioResult) -> None:
        path = self._cache_path(fingerprint)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique tmp name per writer: concurrent runners computing the same
        # entry must not clobber (or os.replace away) each other's tmp file.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(result.to_dict(), sort_keys=True))
        os.replace(tmp, path)  # atomic publish

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec, parallel: Optional[bool] = None) -> StudyResult:
        """Run every (point, seed) combination of ``spec``.

        Args:
            spec: The sweep to execute.
            parallel: ``True`` forces the process pool, ``False`` forces
                serial in-process execution, ``None`` (default) picks the
                pool when more than one uncached task exists and more than
                one worker is available.

        Returns:
            A :class:`StudyResult` with points in cartesian sweep order and
            replications in seed order.
        """
        points = spec.points()
        seeds = spec.seeds()
        tasks: List[Tuple[int, int, int, str]] = []  # (point, rep, seed, key)
        results: Dict[Tuple[int, int], ScenarioResult] = {}
        for point in points:
            for rep, seed in enumerate(seeds):
                key = spec.fingerprint(point.values, seed)
                cached = self._cache_load(key)
                if cached is not None:
                    results[(point.index, rep)] = cached
                else:
                    tasks.append((point.index, rep, seed, key))

        workers = self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(tasks) or 1))
        use_pool = parallel if parallel is not None else (
            workers > 1 and len(tasks) > 1
        )

        if tasks and use_pool:
            payloads = [(spec, points[p].values, seed) for p, _, seed, _ in tasks]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for (p, rep, _, key), result in zip(
                    tasks, pool.map(_run_sweep_task, payloads)
                ):
                    results[(p, rep)] = result
                    self._cache_store(key, result)
        else:
            for p, rep, seed, key in tasks:
                if _uses_workload_plane(spec):
                    result = run_scenario(
                        spec.scenario_for(points[p].values, seed),
                        tracer=self.tracer,
                    )
                else:
                    result = run_scenario(
                        spec.topology_for(points[p].values),
                        spec.config_for(points[p].values, seed),
                        tracer=self.tracer,
                    )
                results[(p, rep)] = result
                self._cache_store(key, result)

        return StudyResult(
            name=spec.name,
            axis_names=spec.axis_names,
            replications=spec.replications,
            points=[
                PointResult(
                    values=dict(point.values),
                    seeds=list(seeds),
                    runs=[results[(point.index, rep)] for rep in range(len(seeds))],
                )
                for point in points
            ],
        )


class Study:
    """Convenience bundle of a :class:`SweepSpec` and a :class:`StudyRunner`.

    Either wrap an existing spec (``Study(spec)``) or build one in place::

        Study(topology="chain", axes={"hops": [2, 4, 8]}, replications=3).run()
    """

    def __init__(self, spec: Optional[SweepSpec] = None,
                 runner: Optional[StudyRunner] = None, **spec_kwargs: object) -> None:
        if spec is not None and spec_kwargs:
            raise ConfigurationError("pass either a SweepSpec or spec kwargs, not both")
        self.spec = spec if spec is not None else SweepSpec(**spec_kwargs)
        self.runner = runner or StudyRunner()

    def run(self, parallel: Optional[bool] = None) -> StudyResult:
        """Execute the study; see :meth:`StudyRunner.run`."""
        return self.runner.run(self.spec, parallel=parallel)


def run_study(
    spec: SweepSpec,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    tracer: Tracer = NULL_TRACER,
) -> StudyResult:
    """One-call convenience wrapper around :class:`StudyRunner`."""
    runner = StudyRunner(max_workers=max_workers, cache_dir=cache_dir, tracer=tracer)
    return runner.run(spec, parallel=parallel)
