"""Declarative parameter studies with a parallel, cached executor.

The paper's whole evaluation is one large parameter sweep: transport variants
× bandwidths × topologies × hop counts × Vegas α.  This module expresses such
sweeps as *data* instead of bespoke nested loops:

* :class:`SweepSpec` describes a cartesian sweep — a topology family (from
  :mod:`repro.topology.registry`), axes of scenario/topology parameters and a
  number of seed replications.
* :class:`StudyRunner` executes every sweep point.  It is a thin façade over
  the :mod:`repro.experiments.exec` execution plane: the sweep is exploded
  into fingerprint-keyed work items on a
  :class:`~repro.experiments.exec.workqueue.WorkQueue`, drained by a
  registered :class:`~repro.experiments.exec.backends.ExecutorBackend`
  (``serial`` or ``process-pool``), checkpointed into a crash-safe
  :class:`~repro.experiments.exec.store.ResultStore` (``cache_dir``) and
  streamed into the result as items complete — so an interrupted study
  resumes from disk, re-executing only the missing items.
* :class:`StudyResult` aggregates the per-seed results into cross-seed
  confidence intervals and round-trips through JSON.

Run ``python -m repro.experiments.study --help`` for the command-line front
end (backend selection, live progress, ``--store``/``--resume``).

Quickstart::

    from repro.experiments.study import SweepSpec, run_study

    spec = SweepSpec(
        name="goodput-vs-hops",
        topology="chain",
        axes={"variant": ["vegas", "newreno"], "hops": [2, 4, 8]},
        base=ScenarioConfig(packet_target=250),
        replications=3,
    )
    study = run_study(spec, parallel=True)
    for point in study.points:
        print(point.values, point.goodput_interval)

Axis keys that are :class:`~repro.experiments.config.ScenarioConfig` fields
override the base config; keys prefixed ``workload.`` are stripped and passed
to the sweep's ``workload_factory`` (so traffic mixes are sweepable, e.g.
``axes={"workload.secondary_flows": [0, 1, 2]}`` with
:func:`~repro.experiments.workload.mixed_transport_workload` sweeps the
number of Vegas flows competing with NewReno); every other key is passed to
the topology builder (so ``hops`` reaches
:func:`repro.topology.chain.chain_topology`).  Seeds are never an axis:
replication ``r`` runs with ``base_seed + r``, which makes a
single-replication study bit-identical to a direct ``run_scenario`` call with
the base config's seed.

Parallel execution requires every sweep point to be picklable and every
referenced transport/topology to be registered at import time of a module the
worker processes also import (the built-ins always are); dynamically
registered variants are available in serial runs regardless.
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import hashlib
import itertools
import json
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.io import atomic_write_text
from repro.core.statistics import ConfidenceInterval, confidence_interval
from repro.core.tracing import NULL_TRACER, Tracer
from repro.experiments.config import ScenarioConfig, resolve_variant
from repro.experiments.results import ScenarioResult
from repro.experiments.runner import run_scenario
from repro.experiments.workload import ScenarioEvent, ScenarioSpec, Workload
from repro.topology.base import Topology
from repro.topology.registry import build_topology, get_topology
from repro.transport.registry import transport_key

#: ScenarioConfig field names; axis keys in this set override the config.
#: Axis keys prefixed ``workload.`` are passed to the sweep's workload
#: factory; every other axis key is passed to the topology builder.
_CONFIG_FIELDS = frozenset(ScenarioConfig.__dataclass_fields__)

#: Axis-key prefix marking workload-factory parameters.
_WORKLOAD_AXIS_PREFIX = "workload."

#: Factory building a :class:`Workload` for one sweep point; must be a
#: module-level callable (pickled by reference for the process pool).  It
#: receives the point's topology plus the stripped ``workload.*`` axis values.
WorkloadFactory = Callable[..., Workload]

#: Bumped on cache *format* changes; cached-result *content* staleness is
#: handled by :func:`_code_fingerprint`, which keys every cache entry to the
#: package sources so that simulation-code edits miss the cache automatically.
_CACHE_SCHEMA = 1

#: Version stamped into :meth:`StudyResult.save` files and checked by
#: :meth:`StudyResult.load`; bump on incompatible result-format changes.
_STUDY_RESULT_SCHEMA = 1

_CODE_FINGERPRINT: Optional[str] = None


def _code_fingerprint() -> str:
    """Digest of every ``repro`` source file (computed once per process)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).resolve().parent
        for source in sorted(root.rglob("*.py")):
            digest.update(str(source.relative_to(root)).encode("utf-8"))
            digest.update(source.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def _jsonable(value: object) -> object:
    """Recursively convert a value into JSON-serializable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: an index plus its axis values."""

    index: int
    values: Mapping[str, object]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative cartesian parameter sweep.

    Attributes:
        name: Study name (used in result files and reports).
        topology: Topology family name (resolved through
            :mod:`repro.topology.registry`) or a prebuilt
            :class:`~repro.topology.base.Topology` shared by every point
            (e.g. one fixed random placement, as in the paper's Section
            4.4.2).
        topology_params: Builder parameters common to every point.
        axes: Ordered mapping from axis name to the values it sweeps.
            Config-field axes override ``base``; axes prefixed ``workload.``
            are stripped and passed to ``workload_factory``; all other axes
            are topology builder parameters.  ``seed`` may not be an axis —
            use ``replications``.
        base: Baseline :class:`ScenarioConfig` every point starts from.
        variant_overrides: Per-variant config overrides (keyed by any variant
            spelling) applied when that variant is the point's variant —
            e.g. ``{"newreno-optwin": {"newreno_max_cwnd": 3.0}}``.  Axis
            values take precedence over these.
        workload: Fixed per-flow :class:`~repro.experiments.workload.Workload`
            shared by every point (its flows must match whatever topology the
            points build).  Mutually exclusive with ``workload_factory``.
        workload_factory: Module-level callable
            ``factory(topology, **workload_params)`` building each point's
            workload, e.g.
            :func:`~repro.experiments.workload.mixed_transport_workload`;
            required when ``workload.*`` axes are swept.
        workload_params: Factory parameters common to every point.
        timeline: :class:`~repro.experiments.workload.ScenarioEvent` timeline
            applied to every point's scenario.
        replications: Independent seeds per sweep point.
        base_seed: Seed of replication 0 (defaults to ``base.seed``);
            replication ``r`` uses ``base_seed + r``.
    """

    name: str = "study"
    topology: Union[str, Topology] = "chain"
    topology_params: Mapping[str, object] = field(default_factory=dict)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    variant_overrides: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    workload: Optional[Workload] = None
    workload_factory: Optional[WorkloadFactory] = None
    workload_params: Mapping[str, object] = field(default_factory=dict)
    timeline: Tuple[ScenarioEvent, ...] = ()
    replications: int = 1
    base_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ConfigurationError("replications must be at least 1")
        for axis, values in self.axes.items():
            if axis == "seed":
                raise ConfigurationError(
                    "'seed' may not be an axis; use replications/base_seed"
                )
            if not list(values):
                raise ConfigurationError(f"axis {axis!r} has no values")
        if isinstance(self.topology, str):
            get_topology(self.topology)  # fail fast on unknown families
        elif self.topology_axes:
            raise ConfigurationError(
                "topology axes "
                f"{sorted(self.topology_axes)} require a topology family name, "
                "not a prebuilt Topology"
            )
        if self.workload is not None and self.workload_factory is not None:
            raise ConfigurationError(
                "pass either a fixed workload or a workload_factory, not both"
            )
        if self.workload_axes and self.workload_factory is None:
            raise ConfigurationError(
                f"workload axes {sorted(self.workload_axes)} require a "
                "workload_factory"
            )
        if (self.workload_params and self.workload_factory is None):
            raise ConfigurationError("workload_params require a workload_factory")
        object.__setattr__(self, "timeline", tuple(self.timeline))
        for variant in self.variant_overrides:
            transport_key(variant)  # fail fast on unknown variants

    # ------------------------------------------------------------------
    # Sweep structure
    # ------------------------------------------------------------------
    @property
    def axis_names(self) -> Tuple[str, ...]:
        """Axis names in declaration order."""
        return tuple(self.axes)

    @property
    def config_axes(self) -> Tuple[str, ...]:
        """Axes that override :class:`ScenarioConfig` fields."""
        return tuple(a for a in self.axes if a in _CONFIG_FIELDS)

    @property
    def workload_axes(self) -> Tuple[str, ...]:
        """Axes passed (prefix-stripped) to the workload factory."""
        return tuple(a for a in self.axes if a.startswith(_WORKLOAD_AXIS_PREFIX))

    @property
    def topology_axes(self) -> Tuple[str, ...]:
        """Axes passed to the topology builder."""
        return tuple(a for a in self.axes
                     if a not in _CONFIG_FIELDS
                     and not a.startswith(_WORKLOAD_AXIS_PREFIX))

    def points(self) -> List[SweepPoint]:
        """All sweep points, in cartesian order (last axis fastest).

        Variant axis values are normalised (enum member for the built-ins,
        canonical registry name otherwise) so that point lookups and JSON
        round trips are spelling-independent.
        """
        names = self.axis_names
        combos = itertools.product(*(tuple(self.axes[a]) for a in names))
        points = []
        for index, combo in enumerate(combos):
            values = dict(zip(names, combo))
            if "variant" in values:
                values["variant"] = resolve_variant(values["variant"])
            points.append(SweepPoint(index=index, values=values))
        return points

    def seeds(self) -> List[int]:
        """The replication seeds: ``base_seed + r`` for each replication."""
        first = self.base.seed if self.base_seed is None else self.base_seed
        return [first + r for r in range(self.replications)]

    # ------------------------------------------------------------------
    # Point materialization
    # ------------------------------------------------------------------
    def config_for(self, values: Mapping[str, object], seed: int) -> ScenarioConfig:
        """The :class:`ScenarioConfig` of one sweep point and seed."""
        overrides: Dict[str, object] = {}
        variant = values.get("variant", self.base.variant)
        for key, extra in self.variant_overrides.items():
            if transport_key(key) == transport_key(variant):
                overrides.update(extra)
        overrides.update(
            {k: v for k, v in values.items() if k in _CONFIG_FIELDS}
        )
        overrides["seed"] = seed
        return replace(self.base, **overrides)

    def _topology_builder_params(self, values: Mapping[str, object]) -> Dict[str, object]:
        params = dict(self.topology_params)
        params.update({k: v for k, v in values.items()
                       if k not in _CONFIG_FIELDS
                       and not k.startswith(_WORKLOAD_AXIS_PREFIX)})
        return params

    def topology_for(self, values: Mapping[str, object]) -> Topology:
        """The :class:`Topology` of one sweep point."""
        if not isinstance(self.topology, str):
            return self.topology
        return build_topology(self.topology, **self._topology_builder_params(values))

    def workload_params_for(self, values: Mapping[str, object]) -> Dict[str, object]:
        """The (prefix-stripped) workload-factory parameters of one point."""
        params = dict(self.workload_params)
        params.update({
            key[len(_WORKLOAD_AXIS_PREFIX):]: value
            for key, value in values.items()
            if key.startswith(_WORKLOAD_AXIS_PREFIX)
        })
        return params

    def workload_for(self, values: Mapping[str, object],
                     topology: Topology) -> Optional[Workload]:
        """The :class:`Workload` of one sweep point (None = legacy flows)."""
        if self.workload_factory is not None:
            return self.workload_factory(topology, **self.workload_params_for(values))
        return self.workload

    def scenario_for(self, values: Mapping[str, object], seed: int) -> ScenarioSpec:
        """The complete :class:`ScenarioSpec` of one (point, seed) run."""
        topology = self.topology_for(values)
        return ScenarioSpec(
            topology=topology,
            workload=self.workload_for(values, topology),
            config=self.config_for(values, seed),
            timeline=self.timeline,
        )

    def fingerprint(self, values: Mapping[str, object], seed: int) -> str:
        """Stable cache key of one (point, seed) scenario run.

        Hashes the full scenario configuration, the topology description, the
        seed and a digest of the package sources, so any parameter or
        simulation-code change misses the cache instead of returning stale
        results.
        """
        if isinstance(self.topology, str):
            topo = {"family": self.topology,
                    "params": _jsonable(self._topology_builder_params(values))}
        else:
            topo = {"instance": _jsonable(self.topology)}
        payload = {
            "schema": _CACHE_SCHEMA,
            "code": _code_fingerprint(),
            "topology": topo,
            "config": _jsonable(self.config_for(values, seed)),
            "seed": seed,
        }
        # Workload/timeline sections are only added when used, so legacy
        # sweeps keep hitting their previously cached entries.
        if self.workload_factory is not None:
            payload["workload"] = {
                "factory": f"{self.workload_factory.__module__}."
                           f"{getattr(self.workload_factory, '__qualname__', repr(self.workload_factory))}",
                "params": _jsonable(self.workload_params_for(values)),
            }
        elif self.workload is not None:
            payload["workload"] = {"flows": _jsonable(self.workload)}
        if self.timeline:
            payload["timeline"] = _jsonable(self.timeline)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class PointResult:
    """All replications of one sweep point.

    Attributes:
        values: The point's axis values.
        seeds: Replication seeds, aligned with ``runs``.
        runs: One :class:`ScenarioResult` per replication seed.
    """

    values: Dict[str, object]
    seeds: List[int]
    runs: List[ScenarioResult]

    @property
    def run(self) -> ScenarioResult:
        """The first replication (the whole run for single-seed studies)."""
        return self.runs[0]

    @property
    def goodput_interval(self) -> ConfidenceInterval:
        """Cross-seed confidence interval of the aggregate goodput (bit/s)."""
        return confidence_interval([r.aggregate_goodput_bps for r in self.runs])

    # ------------------------------------------------------------------
    # Metric selection
    # ------------------------------------------------------------------
    def metric_values(self, pattern: str) -> List[float]:
        """Per-replication totals of the instruments matching ``pattern``.

        ``pattern`` is a shell-style wildcard over hierarchical instrument
        names (see :meth:`repro.experiments.results.ScenarioResult.metric_total`),
        so a sweep can aggregate *any* instrument the stack registers, e.g.
        ``point.metric_values("route.node*.rerrs_sent")``.
        """
        return [run.metric_total(pattern) for run in self.runs]

    def metric_interval(self, pattern: str) -> ConfidenceInterval:
        """Cross-seed confidence interval of the matched instrument total.

        Composes with :meth:`StudyResult.nested` for whole-study tables::

            study.nested("variant", "hops",
                         leaf=lambda p: p.metric_interval(
                             "mac.node*.data_dropped_retry").mean)
        """
        return confidence_interval(self.metric_values(pattern))

    @property
    def mean_goodput_bps(self) -> float:
        """Mean aggregate goodput over replications (bit/s)."""
        return self.goodput_interval.mean

    @property
    def mean_goodput_kbps(self) -> float:
        """Mean aggregate goodput over replications (kbit/s)."""
        return self.mean_goodput_bps / 1000.0

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        values = dict(self.values)
        if "variant" in values:
            values["variant"] = transport_key(values["variant"])
        return {
            "values": values,
            "seeds": list(self.seeds),
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PointResult":
        """Rebuild from :meth:`to_dict` output (axis values must be
        JSON-native; the ``variant`` axis is restored to its enum member)."""
        values = dict(data["values"])
        if "variant" in values:
            values["variant"] = resolve_variant(values["variant"])
        return cls(
            values=values,
            seeds=list(data["seeds"]),
            runs=[ScenarioResult.from_dict(r) for r in data["runs"]],
        )


@dataclass
class StudyResult:
    """The outcome of running a :class:`SweepSpec`."""

    name: str
    axis_names: Tuple[str, ...]
    replications: int
    points: List[PointResult]

    def point(self, **axis_values: object) -> PointResult:
        """The point whose axis values match ``axis_values`` exactly.

        A ``variant`` value may be given in any registered spelling (enum
        member, registry name, label); it is normalised before matching.

        Raises:
            KeyError: If no point matches.
        """
        if "variant" in axis_values:
            axis_values = dict(axis_values,
                               variant=resolve_variant(axis_values["variant"]))
        for point in self.points:
            if all(point.values.get(k) == v for k, v in axis_values.items()):
                return point
        raise KeyError(f"no sweep point matching {axis_values!r} in {self.name}")

    def nested(self, *axis_names: str, leaf=None) -> dict:
        """Reshape the flat point list into nested dicts keyed by axes.

        Args:
            *axis_names: Axes to nest by, outermost first (defaults to the
                study's axis order).
            leaf: Optional transform of the innermost :class:`PointResult`
                (e.g. ``lambda p: p.run`` for the raw first-replication
                :class:`ScenarioResult`).

        Returns:
            ``{axis0_value: {axis1_value: ... leaf(point)}}``.
        """
        names = axis_names or self.axis_names
        root: dict = {}
        for point in self.points:
            cursor = root
            for name in names[:-1]:
                cursor = cursor.setdefault(point.values[name], {})
            cursor[point.values[names[-1]]] = leaf(point) if leaf else point
        return root

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "axis_names": list(self.axis_names),
            "replications": self.replications,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StudyResult":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            axis_names=tuple(data["axis_names"]),
            replications=data["replications"],
            points=[PointResult.from_dict(p) for p in data["points"]],
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically write the study result as JSON; returns the path.

        The file is published via write-temp-then-rename, so a process
        killed mid-save can never leave a truncated JSON behind, and it
        carries a ``schema`` version :meth:`load` checks before decoding.
        """
        payload = dict(self.to_dict(), schema=_STUDY_RESULT_SCHEMA)
        return atomic_write_text(
            path, json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StudyResult":
        """Read a study result previously written with :meth:`save`.

        Raises:
            ConfigurationError: When the file is not valid JSON or was
                written by an incompatible schema version — a clear,
                actionable error instead of an arbitrary decode failure
                deep inside :meth:`from_dict`.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            raise ConfigurationError(
                f"study file {path} is not valid JSON ({exc}); it was "
                "probably written by a crashed pre-atomic-save run — delete "
                "it and re-run the study"
            ) from exc
        if not isinstance(data, dict):
            raise ConfigurationError(f"study file {path} is not a JSON object")
        # Files from before the schema field are version-1 by construction.
        schema = data.get("schema", _STUDY_RESULT_SCHEMA)
        if schema != _STUDY_RESULT_SCHEMA:
            raise ConfigurationError(
                f"study file {path} has schema version {schema!r}; this "
                f"build reads version {_STUDY_RESULT_SCHEMA} — regenerate "
                "the study or load it with a matching version"
            )
        return cls.from_dict(data)


def _uses_workload_plane(spec: SweepSpec) -> bool:
    """True when the sweep needs the ScenarioSpec path (workload/timeline).

    Legacy sweeps keep running through ``run_scenario(topology, config)``,
    whose compiled spec is behaviourally identical — this is purely about not
    constructing intermediate objects on the hot path.
    """
    return (spec.workload is not None or spec.workload_factory is not None
            or bool(spec.timeline))


def _run_sweep_task(payload: Tuple[SweepSpec, Mapping[str, object], int]) -> ScenarioResult:
    """Legacy process-pool entry point: run one (point, seed) scenario.

    Kept for pickle-by-reference compatibility; the execution plane's
    equivalent is :func:`repro.experiments.exec.backends.run_work_item`.
    """
    spec, values, seed = payload
    if _uses_workload_plane(spec):
        return run_scenario(spec.scenario_for(values, seed))
    return run_scenario(spec.topology_for(values), spec.config_for(values, seed))


class StudyRunner:
    """Executes :class:`SweepSpec` sweeps — a façade over the execution plane.

    The heavy lifting lives in :mod:`repro.experiments.exec`: the sweep is
    exploded into idempotent, fingerprint-keyed work items, completed items
    are checkpointed into a crash-safe
    :class:`~repro.experiments.exec.store.ResultStore` at ``cache_dir``, and
    a registered executor backend drains the queue.  Identical
    configurations are therefore never simulated twice — across runners,
    processes and sessions — and a study interrupted at any point resumes
    from ``cache_dir``, re-executing only the missing items.

    Args:
        max_workers: Process-pool size (default: ``os.cpu_count()``).
        cache_dir: Directory of the per-item result store; ``None`` disables
            checkpointing (and resume).
        tracer: Tracer passed to serially executed scenarios.  Worker
            processes cannot share a tracer object, so pool runs trace
            into :data:`~repro.core.tracing.NULL_TRACER`; run serially when
            traces matter.
        backend: Executor backend name (see
            :func:`repro.experiments.exec.backends.backend_names`) forced
            for every run; ``None`` lets ``run``'s ``parallel`` argument and
            the auto heuristic decide.
        progress: Optional callback receiving a
            :class:`~repro.experiments.exec.aggregate.ProgressSnapshot`
            after every work-item transition.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        tracer: Tracer = NULL_TRACER,
        backend: Optional[str] = None,
        progress: Optional[Callable[..., None]] = None,
    ) -> None:
        self.max_workers = max_workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.tracer = tracer
        self.backend = backend
        self.progress = progress

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec, parallel: Optional[bool] = None) -> StudyResult:
        """Run every (point, seed) combination of ``spec``.

        Args:
            spec: The sweep to execute.
            parallel: ``True`` forces the ``process-pool`` backend,
                ``False`` forces ``serial``, ``None`` (default) picks the
                pool when more than one unfinished item exists and more
                than one worker is available.  Ignored when the runner was
                constructed with an explicit ``backend``.

        Returns:
            A :class:`StudyResult` with points in cartesian sweep order and
            replications in seed order — bit-identical whether it ran
            serial, pooled, fresh or resumed.

        Raises:
            StudyExecutionError: If any work item stayed FAILED after its
                retry budget (transient errors are retried with backoff; a
                :class:`~repro.core.errors.ConfigurationError` from a bad
                sweep point fails immediately, without retries).  The
                exception carries the failed items and a partial
                :class:`StudyResult`; with a ``cache_dir`` the completed
                items are checkpointed, so a later :meth:`run`/:meth:`resume`
                re-executes only the failures.  Note this wraps whatever the
                scenario originally raised — callers that previously caught
                the task's own exception type should catch
                :class:`~repro.experiments.exec.backends.StudyExecutionError`
                and inspect ``.failed[*].error``.
        """
        from repro.experiments.exec.backends import execute_study

        backend = self.backend
        if backend is None and parallel is not None:
            backend = "process-pool" if parallel else "serial"
        return execute_study(
            spec,
            backend=backend,
            max_workers=self.max_workers,
            store=self.cache_dir,
            tracer=self.tracer,
            progress=self.progress,
        )

    def resume(self, spec: SweepSpec, parallel: Optional[bool] = None) -> StudyResult:
        """Resume an interrupted run of ``spec`` from ``cache_dir``.

        Every run of a cache-backed runner resumes implicitly; this spelling
        exists to make intent explicit and to fail fast when there is no
        store to resume from.

        Raises:
            ConfigurationError: If the runner has no ``cache_dir``.
        """
        if self.cache_dir is None:
            raise ConfigurationError(
                "resume() needs a cache_dir holding the interrupted study's "
                "checkpointed items"
            )
        return self.run(spec, parallel=parallel)


class Study:
    """Convenience bundle of a :class:`SweepSpec` and a :class:`StudyRunner`.

    Either wrap an existing spec (``Study(spec)``) or build one in place::

        Study(topology="chain", axes={"hops": [2, 4, 8]}, replications=3).run()
    """

    def __init__(self, spec: Optional[SweepSpec] = None,
                 runner: Optional[StudyRunner] = None, **spec_kwargs: object) -> None:
        if spec is not None and spec_kwargs:
            raise ConfigurationError("pass either a SweepSpec or spec kwargs, not both")
        self.spec = spec if spec is not None else SweepSpec(**spec_kwargs)
        self.runner = runner or StudyRunner()

    def run(self, parallel: Optional[bool] = None) -> StudyResult:
        """Execute the study; see :meth:`StudyRunner.run`."""
        return self.runner.run(self.spec, parallel=parallel)


def run_study(
    spec: SweepSpec,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    tracer: Tracer = NULL_TRACER,
    backend: Optional[str] = None,
    progress: Optional[Callable[..., None]] = None,
) -> StudyResult:
    """One-call convenience wrapper around :class:`StudyRunner`."""
    runner = StudyRunner(max_workers=max_workers, cache_dir=cache_dir,
                         tracer=tracer, backend=backend, progress=progress)
    return runner.run(spec, parallel=parallel)


# ======================================================================
# Command-line front end
# ======================================================================
def _parse_axis_value(text: str) -> object:
    """Parse one ``--axis`` value: int, then float, then bare string."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _parse_axis(argument: str) -> Tuple[str, List[object]]:
    """Parse one ``--axis KEY=V1,V2,...`` argument."""
    key, sep, values = argument.partition("=")
    if not sep or not key or not values:
        raise ConfigurationError(
            f"--axis expects KEY=V1,V2,... (got {argument!r})")
    return key, [_parse_axis_value(v) for v in values.split(",") if v]


def _progress_printer(stream) -> Callable[..., None]:
    """A progress callback rendering a live one-line status.

    Uses carriage-return rewrites on a TTY and prints only on count changes
    otherwise, so CI logs stay readable.
    """
    tty = hasattr(stream, "isatty") and stream.isatty()
    last = {"text": None}

    def show(snapshot) -> None:
        text = snapshot.describe()
        if text == last["text"]:
            return
        last["text"] = text
        if tty:
            print(f"\r{text}\x1b[K", end="", file=stream, flush=True)
        else:
            print(text, file=stream, flush=True)

    return show


def main(argv: Optional[List[str]] = None) -> int:
    """Run a parameter study from the command line, resumably.

    Examples::

        PYTHONPATH=src python -m repro.experiments.study --list-backends
        PYTHONPATH=src python -m repro.experiments.study \\
            --backend process-pool --store .study-store --packets 100
        # interrupted?  resume executes only the missing work items:
        PYTHONPATH=src python -m repro.experiments.study \\
            --backend process-pool --store .study-store --packets 100 --resume

    Exit codes: 0 success; 1 work items failed after retries (checkpointed
    progress is kept — fix the cause and ``--resume``); 2 configuration
    error (unknown backend/topology/variant); 3 simulated crash
    (``--fail-after`` test hook).
    """
    from repro.experiments.exec.backends import (
        SimulatedCrash,
        StudyExecutionError,
        executor_backends,
        get_backend,
    )
    from repro.experiments.smoke import smoke_scaled

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.study",
        description="Run a declarative parameter study through the resumable "
                    "execution plane (work queue + checkpointed result "
                    "store + pluggable executor backends).",
    )
    parser.add_argument("--list-backends", action="store_true",
                        help="list registered executor backends and exit")
    parser.add_argument("--backend", default=None,
                        help="executor backend (default: auto-select; "
                             "see --list-backends)")
    parser.add_argument("--topology", default="chain",
                        help="topology family for every point "
                             "(default: %(default)s)")
    parser.add_argument("--variants", nargs="+", default=["vegas", "newreno"],
                        help="transport-variant axis values")
    parser.add_argument("--hops", type=int, nargs="+", default=None,
                        help="chain hop-count axis values "
                             "(default: 2 4, smoke: 2 3)")
    parser.add_argument("--axis", action="append", default=[],
                        metavar="KEY=V1,V2",
                        help="extra sweep axis (repeatable); values are "
                             "parsed as int, float, then string")
    parser.add_argument("--packets", type=int,
                        default=smoke_scaled(250, 30),
                        help="delivered packets per run "
                             "(default: %(default)s)")
    parser.add_argument("--replications", type=int,
                        default=smoke_scaled(3, 2),
                        help="independent seeds per sweep point "
                             "(default: %(default)s)")
    parser.add_argument("--bandwidth", type=float, default=2.0,
                        help="link bandwidth in Mbit/s (default: %(default)s)")
    parser.add_argument("--kernel-backend", default=None, metavar="NAME",
                        help="simulation-engine backend for every point "
                             "(default: reference; sweep it instead with "
                             "--axis kernel_backend=reference,wheel)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed of replication 0")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="process-pool size bound")
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="checkpointed result-store directory (enables "
                             "crash-resume)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted study from --store "
                             "(fails fast when the store does not exist)")
    parser.add_argument("--fail-after", type=int, default=None, metavar="K",
                        help="testing hook: simulate a crash (exit 3) after "
                             "K completed items; completed items stay "
                             "checkpointed in --store")
    parser.add_argument("--save", type=Path, default=None, metavar="PATH",
                        help="write the final StudyResult as JSON to PATH")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the live progress line")
    args = parser.parse_args(argv)

    if args.list_backends:
        backends = executor_backends()
        width = max(len(b.name) for b in backends)
        for backend in backends:
            print(f"{backend.name:<{width}}  {backend.description}")
        return 0

    try:
        if args.backend is not None:
            get_backend(args.backend)  # fail fast: exit 2 + suggestions
        if args.resume and args.store is None:
            raise ConfigurationError("--resume requires --store DIR")
        if args.resume and not args.store.is_dir():
            raise ConfigurationError(
                f"nothing to resume: store directory {args.store} does not "
                "exist (run once with --store to create it)")
        axes: Dict[str, Sequence[object]] = {"variant": args.variants}
        if args.hops is not None:
            axes["hops"] = args.hops
        elif args.topology == "chain":
            axes["hops"] = smoke_scaled([2, 4], [2, 3])
        for axis_arg in args.axis:
            key, values = _parse_axis(axis_arg)
            axes[key] = values
        spec = SweepSpec(
            name="cli-study",
            topology=args.topology,
            axes=axes,
            base=ScenarioConfig(bandwidth_mbps=args.bandwidth,
                                packet_target=args.packets,
                                kernel_backend=(args.kernel_backend
                                                or "reference")),
            replications=args.replications,
            base_seed=args.seed,
        )
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 2

    from repro.experiments.exec.backends import execute_study

    progress = None if args.quiet else _progress_printer(sys.stdout)
    started = time.perf_counter()
    try:
        study = execute_study(
            spec,
            backend=args.backend,
            max_workers=args.max_workers,
            store=args.store,
            progress=progress,
            fail_after=args.fail_after,
        )
    except SimulatedCrash as crash:
        if progress is not None:
            print()
        print(f"{crash}", file=sys.stderr)
        return 3
    except StudyExecutionError as exc:
        if progress is not None:
            print()
        print(f"study failed: {exc}", file=sys.stderr)
        print(f"({len(exc.partial.points)} point(s) with completed "
              "replications are checkpointed; fix the cause and --resume)",
              file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    if progress is not None:
        print()

    from repro.experiments.results import format_table

    rows = []
    for point in study.points:
        interval = point.goodput_interval
        label = ", ".join(
            f"{k}={getattr(v, 'value', v)}" for k, v in point.values.items())
        rows.append([label, interval.mean / 1000.0,
                     interval.half_width / 1000.0])
    print(format_table(["point", "goodput [kbit/s]", "± 95% CI"], rows))
    print(f"\n{len(study.points)} points × {spec.replications} seed(s) "
          f"in {elapsed:.1f} s"
          + (f" (store: {args.store})" if args.store else ""))

    if args.save is not None:
        path = study.save(args.save)
        print(f"study written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
