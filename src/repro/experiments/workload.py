"""Workload API v2: per-flow specs, heterogeneous transports, timelines.

The paper's experiments all run *one* transport variant per scenario, which is
what the legacy ``ScenarioConfig.variant`` + ``Topology.flows`` entry point
expresses: a scalar knob applied to every flow.  This module makes the
workload a first-class composable object instead:

* :class:`FlowSpec` — one traffic flow with its *own* transport variant,
  application timing (start/stop), an optional packet budget, and per-flow
  TCP/Vegas parameter overrides.  A flow that sets nothing inherits every
  default from the scenario's :class:`~repro.experiments.config.ScenarioConfig`.
* :class:`Workload` — an ordered collection of flow specs (the traffic mix of
  one scenario).
* :class:`ScenarioEvent` — one scheduled intervention: start or stop a flow
  mid-run, take a node down (radio silence) or bring it back, block or
  unblock an individual link.
* :class:`ScenarioSpec` — the complete declarative description the runner
  executes: topology + workload + scenario-wide config + a deterministic
  **timeline** of events.
* :class:`ScenarioBuilder` — a fluent front end for composing a spec.

Quickstart — NewReno competing with a late-starting Vegas flow while node 3
drops off the air for ten seconds::

    from repro.experiments.workload import ScenarioBuilder

    spec = (
        ScenarioBuilder("coexistence-demo")
        .topology("chain", hops=7)
        .configure(packet_target=400, seed=3)
        .flow(0, 7, variant="newreno")
        .flow(0, 7, variant="vegas", label="latecomer")
        .start_flow(2, at=5.0)
        .node_down(3, at=20.0)
        .node_up(3, at=30.0)
        .build()
    )
    result = spec.run()

The legacy entry points still work: ``Scenario(topology, config)`` compiles
the (topology, config) pair into a :class:`ScenarioSpec` whose flows all use
the scenario-wide defaults, which reproduces the original behaviour
bit-for-bit (pinned by the golden-trace suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig, VariantLike, resolve_variant
from repro.topology.base import Topology
from repro.transport.ack_thinning import AckThinningPolicy
from repro.transport.registry import get_transport
from repro.transport.tcp_base import TcpConfig

__all__ = [
    "FlowSpec",
    "Workload",
    "ScenarioEvent",
    "ScenarioSpec",
    "ScenarioBuilder",
    "mixed_transport_workload",
]

#: Memo of validated per-flow configs, keyed by (base config, sorted override
#: items).  ``dataclasses.replace`` re-runs the full ScenarioConfig
#: ``__post_init__`` validation, which dominates scenario construction when
#: thousands of flows share a handful of override combinations — uniform
#: workloads collapse to one validation per distinct combination.  Both keys
#: and values are frozen dataclasses, so sharing the result object is safe.
_EFFECTIVE_CONFIG_CACHE: Dict[Tuple[ScenarioConfig, Tuple], ScenarioConfig] = {}
_EFFECTIVE_CONFIG_CACHE_LIMIT = 1024


@dataclass(frozen=True)
class FlowSpec:
    """One traffic flow of a scenario workload.

    Every optional field defaults to "inherit from the scenario config", so a
    bare ``FlowSpec(source, destination)`` behaves exactly like a legacy
    topology flow.

    Attributes:
        source: Source node id (must exist in the scenario's topology).
        destination: Destination node id.
        variant: Transport variant for *this* flow (any registered spelling);
            ``None`` uses the scenario-wide ``config.variant``.
        start_time: Simulated time the driving application starts; ``None``
            uses the scenario's staggered default
            (``(index - 1) * flow_start_stagger``).  A ``flow-start`` timeline
            event on this flow takes precedence over both.
        stop_time: Simulated time the application stops generating traffic;
            ``None`` means the flow runs until the scenario ends.
        packet_limit: Data-packet budget for the flow (TCP senders stop after
            this many segments, CBR sources after this many datagrams);
            ``None`` means unbounded.
        label: Optional human-readable name carried into the per-flow result.
        vegas_alpha: Per-flow Vegas α (= β = γ) override.
        newreno_max_cwnd: Per-flow window clamp for the optimal-window variants.
        udp_interval: Per-flow inter-packet time for paced UDP.
        tcp: Per-flow :class:`~repro.transport.tcp_base.TcpConfig` override.
        ack_thinning: Per-flow ACK-thinning policy override.
    """

    source: int
    destination: int
    variant: Optional[VariantLike] = None
    start_time: Optional[float] = None
    stop_time: Optional[float] = None
    packet_limit: Optional[int] = None
    label: Optional[str] = None
    vegas_alpha: Optional[float] = None
    newreno_max_cwnd: Optional[float] = None
    udp_interval: Optional[float] = None
    tcp: Optional[TcpConfig] = None
    ack_thinning: Optional[AckThinningPolicy] = None

    #: Fields that map one-to-one onto :class:`ScenarioConfig` overrides.
    _CONFIG_OVERRIDES = (
        "vegas_alpha",
        "newreno_max_cwnd",
        "udp_interval",
        "tcp",
        "ack_thinning",
    )

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ConfigurationError("flow source and destination must differ")
        if self.variant is not None:
            # Normalise eagerly so misspelled variants fail at spec time, and
            # spec equality / serialization is spelling-independent.
            object.__setattr__(self, "variant", resolve_variant(self.variant))
        for name in ("start_time", "stop_time"):
            value = getattr(self, name)
            if value is not None and (value < 0 or not math.isfinite(value)):
                raise ConfigurationError(f"{name} must be a non-negative finite time")
        if (self.start_time is not None and self.stop_time is not None
                and self.stop_time <= self.start_time):
            raise ConfigurationError("stop_time must be after start_time")
        if self.packet_limit is not None and self.packet_limit < 1:
            raise ConfigurationError("packet_limit must be at least 1")
        if self.vegas_alpha is not None and self.vegas_alpha <= 0:
            raise ConfigurationError("vegas_alpha must be positive")
        if self.udp_interval is not None and self.udp_interval <= 0:
            raise ConfigurationError("udp_interval must be positive")

    # ------------------------------------------------------------------
    # Resolution against the scenario-wide defaults
    # ------------------------------------------------------------------
    @property
    def endpoints(self) -> Tuple[int, int]:
        """The ``(source, destination)`` node pair."""
        return (self.source, self.destination)

    def effective_variant(self, default: VariantLike) -> VariantLike:
        """This flow's transport variant, falling back to ``default``."""
        return self.variant if self.variant is not None else default

    def config_overrides(self) -> Dict[str, object]:
        """The non-``None`` per-flow config overrides, including ``variant``."""
        overrides: Dict[str, object] = {}
        if self.variant is not None:
            overrides["variant"] = self.variant
        for name in self._CONFIG_OVERRIDES:
            value = getattr(self, name)
            if value is not None:
                overrides[name] = value
        return overrides

    def effective_config(self, base: ScenarioConfig) -> ScenarioConfig:
        """The flow-level :class:`ScenarioConfig` this flow is built with.

        Returns ``base`` itself when the flow overrides nothing, so the legacy
        single-variant path constructs flows from the identical config object.
        Flows with identical overrides against the same base share one
        validated config object (see ``_EFFECTIVE_CONFIG_CACHE``), making
        thousand-flow uniform scenarios pay for validation once, not per flow.
        """
        overrides = self.config_overrides()
        if not overrides:
            return base
        try:
            key = (base, tuple(sorted(overrides.items())))
            cached = _EFFECTIVE_CONFIG_CACHE.get(key)
        except TypeError:
            # Unhashable override value (a caller passed a bespoke mutable
            # object): build an uncached fresh copy.
            return replace(base, **overrides)
        if cached is None:
            if len(_EFFECTIVE_CONFIG_CACHE) >= _EFFECTIVE_CONFIG_CACHE_LIMIT:
                _EFFECTIVE_CONFIG_CACHE.clear()
            cached = _EFFECTIVE_CONFIG_CACHE[key] = replace(base, **overrides)
        return cached


@dataclass(frozen=True)
class Workload:
    """The traffic mix of one scenario: an ordered tuple of flow specs.

    Flow *i* of the paper's figures is ``workload[i - 1]``; timeline events
    and per-flow results use the same 1-based numbering.
    """

    flows: Tuple[FlowSpec, ...] = ()

    def __post_init__(self) -> None:
        flows = tuple(self.flows)
        if not flows:
            raise ConfigurationError("a workload needs at least one flow")
        for flow in flows:
            if not isinstance(flow, FlowSpec):
                raise ConfigurationError(
                    f"workload flows must be FlowSpec instances, got {flow!r}"
                )
        object.__setattr__(self, "flows", flows)

    @classmethod
    def from_topology(cls, topology: Topology, **common: object) -> "Workload":
        """Lift a topology's endpoint flows into a workload.

        Args:
            topology: Provides the flow endpoints (``topology.flows``).
            **common: :class:`FlowSpec` fields applied to every flow (e.g.
                ``variant="vegas"``).
        """
        return cls(flows=tuple(
            FlowSpec(source=source, destination=destination, **common)
            for source, destination in topology.flow_endpoints()
        ))

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[FlowSpec]:
        return iter(self.flows)

    def __getitem__(self, index: int) -> FlowSpec:
        return self.flows[index]

    def variant_keys(self, default: VariantLike) -> List[str]:
        """Ordered unique canonical variant names used by this workload."""
        from repro.transport.registry import transport_key

        keys: List[str] = []
        for flow in self.flows:
            key = transport_key(flow.effective_variant(default))
            if key not in keys:
                keys.append(key)
        return keys

    def is_uniform(self, default: VariantLike) -> bool:
        """True when every flow runs the scenario-wide default variant.

        A flow counts as uniform whether it inherits the default implicitly
        (``variant=None``) or names the same variant explicitly.
        """
        from repro.transport.registry import transport_key

        default_key = transport_key(default)
        return all(
            flow.variant is None or transport_key(flow.variant) == default_key
            for flow in self.flows
        )


#: Timeline actions understood by the scenario runner.  Flow actions target a
#: 1-based flow index; node actions target a node id; link actions target an
#: unordered node pair.
EVENT_ACTIONS = (
    "flow-start",
    "flow-stop",
    "node-down",
    "node-up",
    "link-down",
    "link-up",
)


@dataclass(frozen=True)
class ScenarioEvent:
    """One scheduled intervention in a scenario's timeline.

    Use the classmethod constructors (:meth:`flow_start`, :meth:`node_down`,
    …) rather than spelling the action strings by hand.

    Attributes:
        time: Simulated time the event fires.
        action: One of :data:`EVENT_ACTIONS`.
        target: Flow index (1-based) for flow actions, node id otherwise.
        peer: Second node id for link actions; ``None`` otherwise.
    """

    time: float
    action: str
    target: int
    peer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0 or not math.isfinite(self.time):
            raise ConfigurationError("event time must be a non-negative finite time")
        if self.action not in EVENT_ACTIONS:
            raise ConfigurationError(
                f"unknown timeline action {self.action!r}; "
                f"known: {', '.join(EVENT_ACTIONS)}"
            )
        is_link = self.action.startswith("link-")
        if is_link:
            if self.peer is None or self.peer == self.target:
                raise ConfigurationError(
                    f"{self.action} events need two distinct node ids"
                )
        elif self.peer is not None:
            raise ConfigurationError(f"{self.action} events take no peer node")

    # -- constructors ---------------------------------------------------
    @classmethod
    def flow_start(cls, time: float, flow: int) -> "ScenarioEvent":
        """Start flow ``flow`` (1-based) at ``time`` (overrides its default)."""
        return cls(time=time, action="flow-start", target=flow)

    @classmethod
    def flow_stop(cls, time: float, flow: int) -> "ScenarioEvent":
        """Stop flow ``flow``'s application at ``time``."""
        return cls(time=time, action="flow-stop", target=flow)

    @classmethod
    def node_down(cls, time: float, node: int) -> "ScenarioEvent":
        """Silence ``node``'s radio at ``time`` (transmits vanish, nothing
        is received); upper layers keep running and see a dead link."""
        return cls(time=time, action="node-down", target=node)

    @classmethod
    def node_up(cls, time: float, node: int) -> "ScenarioEvent":
        """Bring a downed node's radio back on the air at ``time``."""
        return cls(time=time, action="node-up", target=node)

    @classmethod
    def link_down(cls, time: float, a: int, b: int) -> "ScenarioEvent":
        """Block the (bidirectional) link between nodes ``a`` and ``b``."""
        return cls(time=time, action="link-down", target=a, peer=b)

    @classmethod
    def link_up(cls, time: float, a: int, b: int) -> "ScenarioEvent":
        """Unblock a previously blocked link."""
        return cls(time=time, action="link-up", target=a, peer=b)

    @property
    def is_flow_event(self) -> bool:
        """True for flow-start / flow-stop events."""
        return self.action.startswith("flow-")


@dataclass(frozen=True)
class ScenarioSpec:
    """The complete declarative description of one runnable scenario.

    Attributes:
        topology: Node placement (flow endpoints come from the workload).
        workload: The traffic mix; ``None`` lifts the topology's own flows
            into an all-defaults workload (the legacy behaviour).
        config: Scenario-wide defaults (bandwidth, seed, routing, mobility,
            metrics, run length); flows inherit anything they don't override.
        timeline: Scheduled :class:`ScenarioEvent` interventions, executed
            deterministically in (time, declaration order).
        name: Optional scenario name (defaults to the topology name).
    """

    topology: Topology
    workload: Optional[Workload] = None
    config: ScenarioConfig = field(default_factory=ScenarioConfig)
    timeline: Tuple[ScenarioEvent, ...] = ()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workload is None:
            object.__setattr__(
                self, "workload", Workload.from_topology(self.topology))
        elif not isinstance(self.workload, Workload):
            object.__setattr__(self, "workload", Workload(tuple(self.workload)))
        object.__setattr__(self, "timeline", tuple(self.timeline))
        self._validate()

    def _validate(self) -> None:
        nodes = self.topology.positions
        # Flows sharing an effective config object (the memoized common case)
        # are validated once per distinct object, not once per flow.
        validated_configs = set()
        for index, flow in enumerate(self.workload, start=1):
            for endpoint in flow.endpoints:
                if endpoint not in nodes:
                    raise ConfigurationError(
                        f"flow {index} endpoint {endpoint} is not a node of "
                        f"topology {self.topology.name!r}"
                    )
            # Fail fast on invalid per-flow variant/parameter combinations
            # (e.g. an optimal-window flow without a window clamp).
            flow_config = flow.effective_config(self.config)
            if id(flow_config) not in validated_configs:
                validated_configs.add(id(flow_config))
                get_transport(flow_config.variant).validate_config(flow_config)
        for event in self.timeline:
            if event.is_flow_event:
                if not 1 <= event.target <= len(self.workload):
                    raise ConfigurationError(
                        f"timeline event {event.action!r} targets flow "
                        f"{event.target}, but the workload has "
                        f"{len(self.workload)} flow(s)"
                    )
            else:
                for node in (event.target, event.peer):
                    if node is not None and node not in nodes:
                        raise ConfigurationError(
                            f"timeline event {event.action!r} targets unknown "
                            f"node {node}"
                        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_legacy(cls, topology: Topology, config: ScenarioConfig,
                    name: Optional[str] = None) -> "ScenarioSpec":
        """Compile the legacy ``(topology, config)`` pair into a spec.

        Every flow inherits all defaults, so running the compiled spec is
        bit-identical to the pre-workload runner (golden traces pin this).
        """
        return cls(topology=topology, workload=Workload.from_topology(topology),
                   config=config, name=name)

    def with_config(self, **overrides: object) -> "ScenarioSpec":
        """Copy of this spec with scenario-config fields overridden."""
        return replace(self, config=replace(self.config, **overrides))

    def sorted_timeline(self) -> Tuple[ScenarioEvent, ...]:
        """Timeline events in execution order (time, then declaration order)."""
        return tuple(sorted(self.timeline, key=lambda event: event.time))

    @property
    def display_name(self) -> str:
        """The spec's name, falling back to the topology name."""
        return self.name if self.name is not None else self.topology.name

    def run(self, tracer=None):
        """Build and run this spec; returns a
        :class:`~repro.experiments.results.ScenarioResult`."""
        # Imported lazily: the runner imports this module.
        from repro.core.tracing import NULL_TRACER
        from repro.experiments.runner import Scenario

        return Scenario(self, tracer=tracer if tracer is not None else NULL_TRACER).run()


class ScenarioBuilder:
    """Fluent composer for :class:`ScenarioSpec`.

    Every method returns the builder, so a whole scenario reads as one
    expression (see the module docstring for a complete example).  ``build()``
    validates and freezes the spec; the builder can keep being mutated to
    derive variations afterwards.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name
        self._topology: Optional[Topology] = None
        self._base_config: Optional[ScenarioConfig] = None
        self._config_fields: Dict[str, object] = {}
        self._flows: List[FlowSpec] = []
        self._timeline: List[ScenarioEvent] = []

    # -- topology -------------------------------------------------------
    def topology(self, topology: Union[str, Topology],
                 **params: object) -> "ScenarioBuilder":
        """Set the topology: an instance, or a registered family name plus
        builder parameters (``.topology("chain", hops=7)``)."""
        if isinstance(topology, str):
            from repro.topology.registry import build_topology

            topology = build_topology(topology, **params)
        elif params:
            raise ConfigurationError(
                "topology builder parameters require a family name, "
                "not a prebuilt Topology"
            )
        self._topology = topology
        return self

    # -- configuration --------------------------------------------------
    def base_config(self, config: ScenarioConfig) -> "ScenarioBuilder":
        """Start from an existing :class:`ScenarioConfig` instead of defaults."""
        self._base_config = config
        return self

    def configure(self, **fields: object) -> "ScenarioBuilder":
        """Override scenario-config fields (accumulates across calls)."""
        self._config_fields.update(fields)
        return self

    # -- workload -------------------------------------------------------
    def flow(self, source: int, destination: int, **spec: object) -> "ScenarioBuilder":
        """Append a :class:`FlowSpec`; keyword arguments are its fields."""
        self._flows.append(FlowSpec(source=source, destination=destination, **spec))
        return self

    def flows_from_topology(self, **common: object) -> "ScenarioBuilder":
        """Append one flow per topology flow (requires the topology first)."""
        if self._topology is None:
            raise ConfigurationError("set the topology before flows_from_topology()")
        for source, destination in self._topology.flow_endpoints():
            self.flow(source, destination, **common)
        return self

    # -- timeline -------------------------------------------------------
    def event(self, event: ScenarioEvent) -> "ScenarioBuilder":
        """Append a timeline event."""
        self._timeline.append(event)
        return self

    def start_flow(self, flow: int, at: float) -> "ScenarioBuilder":
        """Start flow ``flow`` (1-based) at time ``at``."""
        return self.event(ScenarioEvent.flow_start(at, flow))

    def stop_flow(self, flow: int, at: float) -> "ScenarioBuilder":
        """Stop flow ``flow`` (1-based) at time ``at``."""
        return self.event(ScenarioEvent.flow_stop(at, flow))

    def node_down(self, node: int, at: float) -> "ScenarioBuilder":
        """Silence ``node``'s radio at time ``at``."""
        return self.event(ScenarioEvent.node_down(at, node))

    def node_up(self, node: int, at: float) -> "ScenarioBuilder":
        """Restore ``node``'s radio at time ``at``."""
        return self.event(ScenarioEvent.node_up(at, node))

    def link_down(self, a: int, b: int, at: float) -> "ScenarioBuilder":
        """Block the link between ``a`` and ``b`` at time ``at``."""
        return self.event(ScenarioEvent.link_down(at, a, b))

    def link_up(self, a: int, b: int, at: float) -> "ScenarioBuilder":
        """Unblock the link between ``a`` and ``b`` at time ``at``."""
        return self.event(ScenarioEvent.link_up(at, a, b))

    # -- finalization ---------------------------------------------------
    def build(self) -> ScenarioSpec:
        """Validate and freeze the composed :class:`ScenarioSpec`."""
        if self._topology is None:
            raise ConfigurationError("a scenario needs a topology")
        base = self._base_config if self._base_config is not None else ScenarioConfig()
        config = replace(base, **self._config_fields) if self._config_fields else base
        workload = (Workload(tuple(self._flows)) if self._flows
                    else Workload.from_topology(self._topology))
        return ScenarioSpec(
            topology=self._topology,
            workload=workload,
            config=config,
            timeline=tuple(self._timeline),
            name=self.name,
        )

    def run(self, tracer=None):
        """``build()`` and run; returns a ``ScenarioResult``."""
        return self.build().run(tracer=tracer)


def mixed_transport_workload(
    topology: Topology,
    primary: VariantLike = "newreno",
    secondary: VariantLike = "vegas",
    secondary_flows: int = 0,
    **common: object,
) -> Workload:
    """Workload where the last ``secondary_flows`` flows run ``secondary``.

    A module-level (hence picklable) workload factory for traffic-mix sweeps:
    sweep the ``workload.secondary_flows`` axis of a
    :class:`~repro.experiments.study.SweepSpec` to vary e.g. the fraction of
    Vegas flows competing with NewReno flows.

    Args:
        topology: Provides the flow endpoints.
        primary: Variant of the leading flows.
        secondary: Variant of the trailing ``secondary_flows`` flows.
        secondary_flows: How many trailing flows run ``secondary``; clamped
            to the number of topology flows.
        **common: Extra :class:`FlowSpec` fields applied to every flow.
    """
    if secondary_flows < 0:
        raise ConfigurationError("secondary_flows must be non-negative")
    endpoints = topology.flow_endpoints()
    cut = len(endpoints) - min(secondary_flows, len(endpoints))
    return Workload(flows=tuple(
        FlowSpec(source=source, destination=destination,
                 variant=(primary if index < cut else secondary), **common)
        for index, (source, destination) in enumerate(endpoints)
    ))
