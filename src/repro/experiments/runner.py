"""Scenario construction and execution.

A :class:`Scenario` turns a declarative :class:`repro.topology.base.Topology`
plus a :class:`repro.experiments.config.ScenarioConfig` into a live simulated
network (channel, nodes, transport agents, applications), runs it until the
configured number of packets has been delivered (or the time limit is hit) and
returns a :class:`repro.experiments.results.ScenarioResult` with the measures
the paper reports.

The runner is registry-driven on every axis: the configured transport variant
is resolved through :mod:`repro.transport.registry` (the registered
:class:`~repro.transport.registry.TransportProfile` builds the sender, sink
and driving application for every flow) and the configured mobility model is
resolved through :mod:`repro.mobility.registry` (a
:class:`~repro.mobility.base.MobilityManager` drives node positions for
mobile models; the default ``"static"`` model adds no events at all).  Adding
a transport variant or mobility model therefore never requires touching this
module.

Every scenario also owns a :class:`~repro.metrics.registry.MetricsRegistry`
shared by all layers of the stack.  End-of-run scalars are harvested from a
single registry snapshot (no per-layer point-to-point sums); when
``config.metrics`` is true, the registry additionally collects per-flow
cwnd/RTT series and runs a periodic probe sampler (queue occupancy, link
churn, radio energy), all exported through ``ScenarioResult.timeseries``.

Run ``python -m repro.experiments.runner --help`` for the command-line
front end that executes a named scenario and exports its metrics as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.engine import Simulator
from repro.core.randomness import RandomManager
from repro.core.tracing import NULL_TRACER, Tracer
from repro.experiments.config import ScenarioConfig
from repro.experiments.results import FlowResult, ScenarioResult
from repro.mac.timing import MacTiming, timing_for_bandwidth
from repro.metrics import MetricsRegistry
from repro.mobility.base import MobilityManager
from repro.mobility.registry import get_mobility
from repro.net.address import FlowAddress
from repro.net.node import Node
from repro.phy.channel import WirelessChannel
from repro.phy.energy import (
    EnergyModel,
    install_energy_probes,
    scenario_energy,
    set_energy_gauges,
)
from repro.phy.propagation import RangePropagationModel
from repro.routing.static import StaticRouting
from repro.topology.base import Topology, all_next_hop_tables
from repro.transport.registry import TransportBuildContext, get_transport
from repro.transport.stats import FlowStats

#: Base port numbers used for flow endpoints.
_SRC_PORT_BASE = 5000
_DST_PORT_BASE = 6000


class Scenario:
    """One runnable simulation scenario.

    Args:
        topology: Node placement and flow pattern.
        config: Scenario parameters (variant, bandwidth, run length, …).
        tracer: Optional tracer shared by every component.

    Attributes:
        metrics: The scenario's freshly created
            :class:`~repro.metrics.registry.MetricsRegistry` (its time-series
            plane follows ``config.metrics``).  Each scenario owns its own
            registry — counters are get-or-create, so sharing one across
            scenarios would double-count every harvested result.
    """

    def __init__(
        self,
        topology: Topology,
        config: ScenarioConfig,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.topology = topology
        self.config = config
        self.tracer = tracer
        self.metrics = MetricsRegistry(enabled=config.metrics)
        self.profile = get_transport(config.variant)

        self.sim = Simulator()
        self.randomness = RandomManager(config.seed)
        self.timing: MacTiming = timing_for_bandwidth(config.bandwidth_mbps)
        propagation = RangePropagationModel(capture_threshold=config.capture_threshold)
        self.channel = WirelessChannel(self.sim, propagation=propagation, tracer=tracer)
        self.nodes: Dict[int, Node] = {}
        self.mobility: Optional[MobilityManager] = None
        self.flow_stats: List[FlowStats] = []
        self.senders: List[object] = []
        self.sinks: List[object] = []
        self.applications: List[object] = []
        self._build()

    # ==================================================================
    # Construction
    # ==================================================================
    def _build(self) -> None:
        self._build_nodes()
        self._build_mobility()
        if self.config.routing == "static":
            self._install_static_routes()
        for index, flow in enumerate(self.topology.flows, start=1):
            self._build_flow(index, flow.source, flow.destination)
        self._install_probes()
        self.metrics.start_sampling(self.sim, self.config.metrics_interval)

    def _build_nodes(self) -> None:
        for node_id in self.topology.node_ids:
            self.nodes[node_id] = Node(
                sim=self.sim,
                node_id=node_id,
                position=self.topology.positions[node_id],
                channel=self.channel,
                timing=self.timing,
                randomness=self.randomness,
                routing=self.config.routing,
                queue_capacity=self.config.queue_capacity,
                tracer=self.tracer,
                metrics=self.metrics,
            )

    def _build_mobility(self) -> None:
        """Attach a mobility manager when the configured model moves nodes.

        For the default ``"static"`` model nothing is built at all: the event
        stream of a static scenario is bit-identical to one constructed
        before mobility existed (pinned by the golden-trace tests).
        """
        config = self.config
        model = get_mobility(config.mobility).build(
            speed=config.mobility_speed, pause=config.mobility_pause,
        )
        if not model.mobile:
            return
        self.mobility = MobilityManager(
            sim=self.sim,
            channel=self.channel,
            model=model,
            update_interval=config.mobility_update_interval,
            rng=self.randomness.stream("mobility"),
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.mobility.start()

    def _install_probes(self) -> None:
        """Register the periodic probes (no-op on a disabled registry).

        Probes cover the pull-style quantities the paper's time-evolution
        analysis needs: per-node interface-queue occupancy (the per-hop
        queueing the window-size figures explain) and cumulative radio
        energy.  Mobility's link-count probe registers itself when the
        manager starts.
        """
        metrics = self.metrics
        if not metrics.enabled:
            return
        for node_id, node in self.nodes.items():
            metrics.add_probe(
                f"mac.node{node_id}.queue_len", node.queue.__len__,
                unit="packets", description="Interface-queue occupancy.")
        install_energy_probes(
            metrics, EnergyModel(), self.sim,
            {node_id: node.radio.stats for node_id, node in self.nodes.items()})

    def _install_static_routes(self) -> None:
        graph = self.topology.connectivity_graph(self.channel.propagation)
        tables = all_next_hop_tables(graph)
        for node_id, node in self.nodes.items():
            routing = node.routing
            if not isinstance(routing, StaticRouting):
                continue
            for destination, next_hop in tables.get(node_id, {}).items():
                routing.set_next_hop(destination, next_hop)

    def _per_flow_batch_size(self) -> int:
        flows = max(1, len(self.topology.flows))
        return max(1, self.config.packet_target // (flows * self.config.batch_count))

    def _build_flow(self, index: int, source: int, destination: int) -> None:
        config = self.config
        flow = FlowAddress(
            src_node=source,
            src_port=_SRC_PORT_BASE + index,
            dst_node=destination,
            dst_port=_DST_PORT_BASE + index,
        )
        stats = FlowStats(flow_id=index, batch_size=self._per_flow_batch_size(),
                          registry=self.metrics)
        self.flow_stats.append(stats)
        start_time = (index - 1) * config.flow_start_stagger

        context = TransportBuildContext(
            sim=self.sim, flow=flow, stats=stats, config=config,
            timing=self.timing, tracer=self.tracer,
        )
        sender = self.profile.build_sender(context)
        sink = self.profile.build_sink(context)
        self.nodes[flow.src_node].register_agent(sender)
        self.nodes[flow.dst_node].register_agent(sink)
        application = self.profile.build_application(context, sender, start_time)
        application.bind_metrics(self.metrics, f"app.flow{index}")
        application.schedule_start()

        self.senders.append(sender)
        self.sinks.append(sink)
        self.applications.append(application)

    # ==================================================================
    # Execution
    # ==================================================================
    @property
    def total_delivered(self) -> int:
        """Total in-order packets delivered across all flows so far."""
        return sum(stats.packets_delivered for stats in self.flow_stats)

    def run(self) -> ScenarioResult:
        """Run until the packet target (or time limit) and collect results."""
        config = self.config
        reached = False
        while self.sim.now < config.max_sim_time:
            horizon = min(self.sim.now + config.run_slice, config.max_sim_time)
            processed = self.sim.run(until=horizon)
            if self.total_delivered >= config.packet_target:
                reached = True
                break
            if processed == 0 and self.sim.pending_events == 0:
                break
        return self._collect_results(reached)

    # ==================================================================
    # Result collection
    # ==================================================================
    def _collect_results(self, reached_target: bool) -> ScenarioResult:
        """Harvest the registry into a :class:`ScenarioResult`.

        All network-wide scalars come out of the single metrics snapshot
        (wildcard sums over the hierarchical names) instead of per-layer
        loops over nodes, so every run path shares one harvesting story.
        """
        now = self.sim.now
        metrics = self.metrics
        energy = self._energy_report(now)

        flow_results = []
        for stats, flow_spec in zip(self.flow_stats, self.topology.flows):
            flow_results.append(self._flow_result(stats, flow_spec.source,
                                                  flow_spec.destination, now))

        dropped = metrics.total("mac.node*.data_dropped_retry")
        succeeded = metrics.total("mac.node*.data_tx_success")
        finished = dropped + succeeded
        return ScenarioResult(
            name=f"{self.topology.name}/{self.profile.label}"
                 f"/{self.config.bandwidth_mbps:g}Mbps",
            variant=self.profile.label,
            bandwidth_mbps=self.config.bandwidth_mbps,
            simulated_time=now,
            delivered_packets=self.total_delivered,
            flows=flow_results,
            false_route_failures=int(metrics.total("route.node*.false_route_failures")),
            link_layer_drop_probability=dropped / finished if finished else 0.0,
            mac_frames_sent=int(metrics.total("phy.node*.frames_sent")),
            reached_packet_target=reached_target,
            energy=energy,
            metrics=metrics.snapshot(),
            timeseries=metrics.timeseries_data() if metrics.enabled else None,
        )

    def _energy_report(self, now: float):
        model = EnergyModel()
        radio_stats = {node_id: node.radio.stats
                       for node_id, node in self.nodes.items()}
        set_energy_gauges(self.metrics, model, now, radio_stats)
        airtimes = [
            {
                "time_transmitting": stats.time_transmitting,
                "time_receiving": stats.time_receiving,
            }
            for stats in radio_stats.values()
        ]
        delivered_bytes = self.metrics.total("tcp.flow*.bytes_delivered")
        return scenario_energy(model, now, airtimes, delivered_bytes)

    def _flow_result(self, stats: FlowStats, source: int, destination: int,
                     now: float) -> FlowResult:
        goodput_ci = None
        if stats.completed_batches >= 3:
            interval = stats.batch_goodput()
            goodput_bps = interval.mean * 8.0
            goodput_ci = interval
        else:
            start = stats.first_delivery_time if stats.first_delivery_time is not None else now
            duration = max(now - start, 1e-9)
            goodput_bps = stats.bytes_delivered * 8.0 / duration if stats.bytes_delivered else 0.0
        return FlowResult(
            flow_id=stats.flow_id,
            source=source,
            destination=destination,
            delivered_packets=stats.packets_delivered,
            goodput_bps=goodput_bps,
            goodput_ci=goodput_ci,
            retransmissions=stats.retransmissions,
            retransmissions_per_packet=stats.retransmissions_per_delivered_packet(),
            timeouts=stats.timeouts,
            average_window=stats.average_window(now),
        )


def run_scenario(
    topology: Topology,
    config: ScenarioConfig,
    tracer: Tracer = NULL_TRACER,
) -> ScenarioResult:
    """Convenience wrapper: build a :class:`Scenario` and run it."""
    return Scenario(topology, config, tracer=tracer).run()


# ======================================================================
# Command-line front end
# ======================================================================
def main(argv: Optional[List[str]] = None) -> int:
    """Run a named scenario and (optionally) export its metrics as JSON.

    Examples::

        PYTHONPATH=src python -m repro.experiments.runner --list
        PYTHONPATH=src python -m repro.experiments.runner chain7-vegas-2mbps \\
            --metrics --packets 500 -o chain7_metrics.json

    With ``--metrics`` the exported JSON contains the full
    ``ScenarioResult.to_dict()`` payload including the ``timeseries``
    section (``tcp.flow1.cwnd``, ``mac.node3.queue_len``, …) — the raw
    material of the paper's time-evolution figures.
    """
    # Imported lazily: repro.experiments.scenarios imports this module.
    from repro.experiments.scenarios import available_scenarios, build_named_scenario

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run one named scenario, optionally exporting metric "
                    "time series (cwnd, queue occupancy, energy) as JSON.",
    )
    parser.add_argument("scenario", nargs="?", default="chain7-vegas-2mbps",
                        help="preset name (default: %(default)s); see --list")
    parser.add_argument("--list", action="store_true",
                        help="list available scenario presets and exit")
    parser.add_argument("--metrics", action="store_true",
                        help="enable the time-series metrics plane")
    parser.add_argument("--metrics-interval", type=float, default=None,
                        metavar="S", help="probe sampling cadence in simulated "
                                          "seconds (default: config default)")
    parser.add_argument("--packets", type=int, default=None,
                        help="override the packet target")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the RNG seed")
    parser.add_argument("--max-sim-time", type=float, default=None,
                        help="override the simulated-time limit")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="write the full result (ScenarioResult.to_dict) "
                             "as JSON to this path")
    args = parser.parse_args(argv)

    if args.list:
        for name in available_scenarios():
            print(name)
        return 0

    overrides: Dict[str, object] = {}
    if args.metrics:
        overrides["metrics"] = True
    if args.metrics_interval is not None:
        overrides["metrics_interval"] = args.metrics_interval
    if args.packets is not None:
        overrides["packet_target"] = args.packets
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.max_sim_time is not None:
        overrides["max_sim_time"] = args.max_sim_time

    scenario = build_named_scenario(args.scenario, **overrides)
    result = scenario.run()

    print(f"{result.name}: {result.delivered_packets} packets in "
          f"{result.simulated_time:.1f} s simulated, aggregate goodput "
          f"{result.aggregate_goodput_kbps:.1f} kbit/s")
    if result.timeseries is not None:
        print(f"{len(result.timeseries)} time series collected:")
        for name, data in sorted(result.timeseries.items()):
            values = data["values"]
            if not values:
                continue
            unit = f" {data['unit']}" if data.get("unit") else ""
            print(f"  {name}: {len(values)} samples, "
                  f"last {values[-1]:.4g}{unit}")

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(result.to_dict(), indent=2,
                                          sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
