"""Scenario construction and execution.

A :class:`Scenario` turns a declarative
:class:`~repro.experiments.workload.ScenarioSpec` — topology + per-flow
workload + scenario-wide config + a timeline of scheduled events — into a
live simulated network (channel, nodes, transport agents, applications), runs
it until the configured number of packets has been delivered (or the time
limit is hit) and returns a
:class:`repro.experiments.results.ScenarioResult` with the measures the paper
reports.  The legacy ``Scenario(topology, config)`` entry point still works:
the pair is compiled into a :class:`ScenarioSpec` whose flows all inherit the
scenario-wide defaults, which reproduces the original single-variant
behaviour bit-for-bit (pinned by the golden-trace suite).

The runner is registry-driven on every axis: each flow's transport variant is
resolved through :mod:`repro.transport.registry` (the registered
:class:`~repro.transport.registry.TransportProfile` builds the sender, sink
and driving application for that flow — different flows of one scenario may
use different variants) and the configured mobility model is resolved through
:mod:`repro.mobility.registry` (a :class:`~repro.mobility.base.MobilityManager`
drives node positions for mobile models; the default ``"static"`` model adds
no events at all).  Adding a transport variant or mobility model therefore
never requires touching this module.

Timeline events (:class:`~repro.experiments.workload.ScenarioEvent`) are
scheduled at build time in (time, declaration) order, so a scripted scenario
is exactly as deterministic as an unscripted one: the same seed always yields
the same trace digest.  ``flow-start`` events take over a flow's start
entirely (the flow is not auto-started); ``flow-stop`` stops the driving
application; ``node-down``/``node-up`` and ``link-down``/``link-up`` toggle
scripted radio silence and link blocks at the channel.

Every scenario also owns a :class:`~repro.metrics.registry.MetricsRegistry`
shared by all layers of the stack.  End-of-run scalars are harvested from a
single registry snapshot (no per-layer point-to-point sums); when
``config.metrics`` is true, the registry additionally collects per-flow
cwnd/RTT series and runs a periodic probe sampler (queue occupancy, link
churn, radio energy), all exported through ``ScenarioResult.timeseries``.

Run ``python -m repro.experiments.runner --help`` for the command-line
front end that executes a named scenario and exports its metrics as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.backends import create_kernel, kernel_backend_profiles
from repro.core.errors import ConfigurationError
from repro.core.randomness import RandomManager
from repro.core.tracing import NULL_TRACER, Tracer
from repro.experiments.config import ScenarioConfig
from repro.experiments.results import FlowResult, ScenarioResult
from repro.experiments.workload import FlowSpec, ScenarioEvent, ScenarioSpec
from repro.link.gateway import WiredNode, make_gateway
from repro.link.plan import LinkPlan
from repro.link.registry import get_link_layer, link_layer_profiles
from repro.link.wired import WiredBus
from repro.mac.timing import MacTiming, timing_for_bandwidth
from repro.metrics import MetricsRegistry
from repro.mobility.base import MobilityManager
from repro.mobility.registry import get_mobility
from repro.net.address import FlowAddress
from repro.net.node import Node
from repro.phy.channel import WirelessChannel
from repro.phy.energy import (
    EnergyModel,
    install_energy_probes,
    scenario_energy,
    set_energy_gauges,
)
from repro.phy.propagation import RangePropagationModel
from repro.routing.aodv import AodvConfig
from repro.routing.static import StaticRouting
from repro.topology.base import Topology, all_next_hop_tables
from repro.transport.registry import TransportBuildContext, get_transport
from repro.transport.stats import FlowStats

#: Base port numbers used for flow endpoints.
_SRC_PORT_BASE = 5000
_DST_PORT_BASE = 6000


class Scenario:
    """One runnable simulation scenario.

    Accepts either a complete :class:`~repro.experiments.workload.ScenarioSpec`
    (``Scenario(spec)``) or the legacy ``Scenario(topology, config)`` pair,
    which is compiled into an all-defaults spec.

    Args:
        spec_or_topology: A :class:`ScenarioSpec`, or a topology (node
            placement and flow pattern) paired with ``config``.
        config: Scenario parameters (variant, bandwidth, run length, …);
            required with a topology, forbidden with a spec.
        tracer: Optional tracer shared by every component.

    Attributes:
        spec: The (possibly compiled) :class:`ScenarioSpec` being run.
        workload: The spec's per-flow workload.
        profiles: One resolved transport profile per flow, aligned with
            ``workload.flows`` / ``flow_stats`` / ``senders``.
        metrics: The scenario's freshly created
            :class:`~repro.metrics.registry.MetricsRegistry` (its time-series
            plane follows ``config.metrics``).  Each scenario owns its own
            registry — counters are get-or-create, so sharing one across
            scenarios would double-count every harvested result.
    """

    def __init__(
        self,
        spec_or_topology: Union[ScenarioSpec, Topology],
        config: Optional[ScenarioConfig] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if isinstance(spec_or_topology, ScenarioSpec):
            if config is not None:
                raise ConfigurationError(
                    "pass either a ScenarioSpec or (topology, config), not both"
                )
            spec = spec_or_topology
        else:
            if config is None:
                raise ConfigurationError(
                    "Scenario(topology, ...) requires a ScenarioConfig"
                )
            spec = ScenarioSpec.from_legacy(spec_or_topology, config)
        self.spec = spec
        self.topology = spec.topology
        self.config = spec.config
        self.workload = spec.workload
        self.tracer = tracer
        self.metrics = MetricsRegistry(enabled=self.config.metrics)
        #: Scenario-wide default profile (flows may override per spec).
        self.profile = get_transport(self.config.variant)

        config = self.config
        self.sim = create_kernel(config.kernel_backend)
        self.randomness = RandomManager(config.seed)
        self.timing: MacTiming = timing_for_bandwidth(config.bandwidth_mbps)
        propagation = RangePropagationModel(capture_threshold=config.capture_threshold)
        self.channel = WirelessChannel(self.sim, propagation=propagation, tracer=tracer)
        self.link_plan = self._resolve_link_plan()
        self.buses: List[WiredBus] = [
            WiredBus(self.sim, rate_mbps=segment.rate_mbps,
                     propagation_delay=segment.propagation_delay,
                     bus_id=index, tracer=tracer, metrics=self.metrics)
            for index, segment in enumerate(self.link_plan.segments)
        ]
        self.nodes: Dict[int, Node] = {}
        self.mobility: Optional[MobilityManager] = None
        self.flow_stats: List[FlowStats] = []
        self.profiles: List[object] = []
        self.senders: List[object] = []
        self.sinks: List[object] = []
        self.applications: List[object] = []
        self._build()

    # ==================================================================
    # Construction
    # ==================================================================
    def _resolve_link_plan(self) -> LinkPlan:
        """The topology's own link plan, or one built by the configured
        link-layer profile (``"wireless"`` reproduces the historical
        all-radio layout exactly)."""
        plan = getattr(self.topology, "link_plan", None)
        if plan is not None:
            return plan
        return get_link_layer(self.config.link_layer).build_plan(
            self.topology, self.config)

    def _build(self) -> None:
        self._build_nodes()
        self._build_mobility()
        if self.config.routing == "static":
            self._install_static_routes()
        timeline = self.spec.sorted_timeline()
        # Flows with scripted flow-start events are entirely event-driven:
        # they are not auto-started at their spec/stagger start time.
        self._event_started = {event.target for event in timeline
                               if event.action == "flow-start"}
        shares = self._flow_packet_shares()
        for index, flow_spec in enumerate(self.workload, start=1):
            self._build_flow(index, flow_spec, shares[index - 1])
        self._schedule_timeline(timeline)
        self._install_probes()
        self.metrics.start_sampling(self.sim, self.config.metrics_interval)

    def _build_nodes(self) -> None:
        # None keeps the AodvRouting default config object — bit-identical to
        # a build that predates the expanding-ring knob.
        aodv_config = (AodvConfig(expanding_ring=True)
                       if self.config.aodv_expanding_ring else None)
        plan = self.link_plan
        wireless = set(plan.wireless_nodes)
        bus_of: Dict[int, WiredBus] = {}
        for bus, segment in zip(self.buses, plan.segments):
            for node_id in segment.nodes:
                bus_of[node_id] = bus
        for node_id in self.topology.node_ids:
            if node_id in wireless:
                self.nodes[node_id] = Node(
                    sim=self.sim,
                    node_id=node_id,
                    position=self.topology.positions[node_id],
                    channel=self.channel,
                    timing=self.timing,
                    randomness=self.randomness,
                    routing=self.config.routing,
                    queue_capacity=self.config.queue_capacity,
                    aodv_config=aodv_config,
                    tracer=self.tracer,
                    metrics=self.metrics,
                )
            else:
                self.nodes[node_id] = WiredNode(
                    sim=self.sim,
                    node_id=node_id,
                    position=self.topology.positions[node_id],
                    bus=bus_of[node_id],
                    randomness=self.randomness,
                    routing=self.config.routing,
                    queue_capacity=self.config.queue_capacity,
                    aodv_config=aodv_config,
                    tracer=self.tracer,
                    metrics=self.metrics,
                )
        # Gateways get their wired port (and forwarding routing) only after
        # every port-less node registered, so bus port order is stable.
        for gateway_id in sorted(plan.gateways):
            subnet = plan.subnet_of.get(gateway_id)
            make_gateway(
                self.nodes[gateway_id], bus_of[gateway_id], self.randomness,
                wired_next_hops=self._gateway_wired_table(gateway_id, plan),
                wireless_subnet=plan.subnet_members(subnet),
                routing=self.config.routing,
                wired_queue_capacity=self.config.queue_capacity,
                aodv_config=aodv_config,
            )

    def _gateway_wired_table(self, gateway_id: int, plan: LinkPlan) -> Dict[int, int]:
        """Wired forwarding table of one gateway: bus members directly, plus
        every node whose subnet gateway sits on the same bus via that
        gateway."""
        members = set(plan.segments[plan.segment_of(gateway_id)].nodes)
        table: Dict[int, int] = {}
        for member in members:
            if member != gateway_id:
                table[member] = member
        for node_id, subnet in plan.subnet_of.items():
            remote_gateway = plan.gateway_of_subnet.get(subnet)
            if (remote_gateway is not None and remote_gateway != gateway_id
                    and remote_gateway in members):
                table.setdefault(node_id, remote_gateway)
        return table

    def _build_mobility(self) -> None:
        """Attach a mobility manager when the configured model moves nodes.

        For the default ``"static"`` model nothing is built at all: the event
        stream of a static scenario is bit-identical to one constructed
        before mobility existed (pinned by the golden-trace tests).
        """
        config = self.config
        model = get_mobility(config.mobility).build(
            speed=config.mobility_speed, pause=config.mobility_pause,
        )
        if not model.mobile:
            return
        self.mobility = MobilityManager(
            sim=self.sim,
            channel=self.channel,
            model=model,
            update_interval=config.mobility_update_interval,
            rng=self.randomness.stream("mobility"),
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.mobility.start()

    def _install_probes(self) -> None:
        """Register the periodic probes (no-op on a disabled registry).

        Probes cover the pull-style quantities the paper's time-evolution
        analysis needs: per-node interface-queue occupancy (the per-hop
        queueing the window-size figures explain) and cumulative radio
        energy.  Mobility's link-count probe registers itself when the
        manager starts.
        """
        metrics = self.metrics
        if not metrics.enabled:
            return
        for node_id, node in self.nodes.items():
            metrics.add_probe(
                f"mac.node{node_id}.queue_len", node.queue.__len__,
                unit="packets", description="Interface-queue occupancy.")
        install_energy_probes(
            metrics, EnergyModel(), self.sim,
            {node_id: node.radio.stats for node_id, node in self.nodes.items()
             if node.radio is not None})

    def _install_static_routes(self) -> None:
        plan = self.link_plan
        if plan.is_pure_wireless:
            graph = self.topology.connectivity_graph(self.channel.propagation)
            tables = all_next_hop_tables(graph)
            for node_id, node in self.nodes.items():
                routing = node.routing
                if not isinstance(routing, StaticRouting):
                    continue
                for destination, next_hop in tables.get(node_id, {}).items():
                    routing.set_next_hop(destination, next_hop)
            return
        self._install_static_routes_heterogeneous(plan)

    def _install_static_routes_heterogeneous(self, plan: LinkPlan) -> None:
        """Static tables for a plan with wired segments.

        Wireless nodes get shortest-path tables within their own radio
        component plus a default route towards their subnet's gateway for
        everything else; wired-only nodes get directly-connected routes to
        their bus peers plus next-gateway routes for remote subnets.
        Gateways' wired tables were installed at construction — here they
        only receive their wireless-component table.
        """
        all_ids = set(self.topology.node_ids)
        gateways = set(plan.gateways)
        wireless_positions = {node_id: self.topology.positions[node_id]
                              for node_id in plan.wireless_nodes}
        tables: Dict[int, Dict[int, int]] = {}
        if wireless_positions:
            radio_plane = Topology(name=f"{self.topology.name}-radio-plane",
                                   positions=wireless_positions)
            graph = radio_plane.connectivity_graph(self.channel.propagation)
            tables = all_next_hop_tables(graph)
        bus_members: Dict[int, set] = {}
        for segment in plan.segments:
            for node_id in segment.nodes:
                bus_members[node_id] = set(segment.nodes)
        for node_id, node in self.nodes.items():
            routing = node.routing
            if not isinstance(routing, StaticRouting):
                continue
            local = tables.get(node_id, {})
            for destination, next_hop in local.items():
                routing.set_next_hop(destination, next_hop)
            if node_id in gateways:
                continue
            if node_id in wireless_positions:
                subnet = plan.subnet_of.get(node_id)
                gateway = plan.gateway_of_subnet.get(subnet)
                toward_gateway = local.get(gateway)
                if toward_gateway is not None:
                    routing.set_default_next_hop(toward_gateway)
            else:
                members = bus_members.get(node_id, set())
                for destination in members - {node_id}:
                    routing.set_next_hop(destination, destination)
                for destination in all_ids - members - {node_id}:
                    subnet = plan.subnet_of.get(destination)
                    gateway = plan.gateway_of_subnet.get(subnet)
                    if gateway is not None and gateway in members:
                        routing.set_next_hop(destination, gateway)

    def _flow_packet_shares(self) -> List[int]:
        """Per-flow shares of ``packet_target``, remainder spread over the
        leading flows so the shares always sum to exactly the target.

        The share feeds each flow's batch-means batch size
        (``share // batch_count``); before the remainder distribution a
        target not divisible by ``flows * batch_count`` silently under-sized
        every flow's batches.
        """
        flows = max(1, len(self.workload))
        base, remainder = divmod(self.config.packet_target, flows)
        return [base + (1 if index < remainder else 0) for index in range(flows)]

    def _per_flow_batch_size(self) -> int:
        """Deprecated equal-share batch size (kept for external callers);
        the builder now uses :meth:`_flow_packet_shares` per flow."""
        flows = max(1, len(self.workload))
        return max(1, self.config.packet_target // (flows * self.config.batch_count))

    def _build_flow(self, index: int, flow_spec: FlowSpec, packet_share: int) -> None:
        config = flow_spec.effective_config(self.config)
        profile = get_transport(config.variant)
        self.profiles.append(profile)
        flow = FlowAddress(
            src_node=flow_spec.source,
            src_port=_SRC_PORT_BASE + index,
            dst_node=flow_spec.destination,
            dst_port=_DST_PORT_BASE + index,
        )
        batch_size = max(1, packet_share // config.batch_count)
        stats = FlowStats(flow_id=index, batch_size=batch_size,
                          registry=self.metrics)
        self.flow_stats.append(stats)
        if flow_spec.start_time is not None:
            start_time = flow_spec.start_time
        else:
            start_time = (index - 1) * config.flow_start_stagger

        context = TransportBuildContext(
            sim=self.sim, flow=flow, stats=stats, config=config,
            timing=self.timing, tracer=self.tracer,
            data_limit=flow_spec.packet_limit,
        )
        sender = profile.build_sender(context)
        sink = profile.build_sink(context)
        self.nodes[flow.src_node].register_agent(sender)
        self.nodes[flow.dst_node].register_agent(sink)
        application = profile.build_application(context, sender, start_time)
        application.bind_metrics(self.metrics, f"app.flow{index}")
        if index not in self._event_started:
            application.schedule_start()
        if flow_spec.stop_time is not None:
            self.sim.schedule_at(flow_spec.stop_time, application.stop)

        self.senders.append(sender)
        self.sinks.append(sink)
        self.applications.append(application)

    # ==================================================================
    # Timeline execution
    # ==================================================================
    def _schedule_timeline(self, timeline) -> None:
        """Schedule every timeline event in (time, declaration) order.

        Scheduling happens entirely at build time, so a scripted scenario's
        event stream is as deterministic as an unscripted one.
        """
        for event in timeline:
            # Register the per-action counter up front (deterministic
            # registry contents regardless of which events end up firing
            # before the run stops).
            self.metrics.counter(
                f"scenario.timeline.{event.action}", unit="events",
                description="Timeline events applied by the scenario runner.")
            self.sim.schedule_at(event.time, self._apply_event, event)

    def _apply_event(self, event: ScenarioEvent) -> None:
        """Apply one scheduled :class:`ScenarioEvent` (called by the engine)."""
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, "scenario", event.action,
                               target=event.target, peer=event.peer)
        self.metrics.counter(f"scenario.timeline.{event.action}").inc()
        action = event.action
        if action == "flow-start":
            self.applications[event.target - 1].start_now()
        elif action == "flow-stop":
            self.applications[event.target - 1].stop()
        elif action == "node-down":
            self.channel.set_node_down(event.target, True)
        elif action == "node-up":
            self.channel.set_node_down(event.target, False)
        elif action == "link-down":
            self._set_link_blocked(event.target, event.peer, True)
        elif action == "link-up":
            self._set_link_blocked(event.target, event.peer, False)
        else:  # pragma: no cover - ScenarioEvent validates its action
            raise ConfigurationError(f"unknown timeline action {action!r}")

    def _set_link_blocked(self, target: int, peer: int, blocked: bool) -> None:
        """Route a link block to the bus carrying both endpoints, falling
        back to the wireless channel (which validates unknown nodes)."""
        for bus in self.buses:
            node_ids = set(bus.node_ids)
            if target in node_ids and peer in node_ids:
                bus.set_link_blocked(target, peer, blocked)
                return
        self.channel.set_link_blocked(target, peer, blocked)

    # ==================================================================
    # Execution
    # ==================================================================
    @property
    def total_delivered(self) -> int:
        """Total in-order packets delivered across all flows so far."""
        return sum(stats.packets_delivered for stats in self.flow_stats)

    def run(self) -> ScenarioResult:
        """Run until the packet target (or time limit) and collect results."""
        config = self.config
        reached = False
        while self.sim.now < config.max_sim_time:
            horizon = min(self.sim.now + config.run_slice, config.max_sim_time)
            processed = self.sim.run(until=horizon)
            if self.total_delivered >= config.packet_target:
                reached = True
                break
            if processed == 0 and self.sim.pending_events == 0:
                break
        return self._collect_results(reached)

    # ==================================================================
    # Result collection
    # ==================================================================
    def _collect_results(self, reached_target: bool) -> ScenarioResult:
        """Harvest the registry into a :class:`ScenarioResult`.

        All network-wide scalars come out of the single metrics snapshot
        (wildcard sums over the hierarchical names) instead of per-layer
        loops over nodes, so every run path shares one harvesting story.
        """
        now = self.sim.now
        metrics = self.metrics
        energy = self._energy_report(now)
        for bus in self.buses:
            bus.finalize_utilization(now)

        flow_results = []
        for stats, flow_spec, profile in zip(self.flow_stats, self.workload,
                                             self.profiles):
            flow_results.append(
                self._flow_result(stats, flow_spec, profile.label, now))

        dropped = metrics.total("mac.node*.data_dropped_retry")
        succeeded = metrics.total("mac.node*.data_tx_success")
        finished = dropped + succeeded
        return ScenarioResult(
            name=f"{self.spec.display_name}/{self._variant_label()}"
                 f"/{self.config.bandwidth_mbps:g}Mbps",
            variant=self._variant_label(),
            bandwidth_mbps=self.config.bandwidth_mbps,
            simulated_time=now,
            delivered_packets=self.total_delivered,
            flows=flow_results,
            false_route_failures=int(metrics.total("route.node*.false_route_failures")),
            link_layer_drop_probability=dropped / finished if finished else 0.0,
            mac_frames_sent=int(metrics.total("phy.node*.frames_sent")),
            reached_packet_target=reached_target,
            energy=energy,
            metrics=metrics.snapshot(),
            timeseries=metrics.timeseries_data() if metrics.enabled else None,
        )

    def _energy_report(self, now: float):
        model = EnergyModel()
        radio_stats = {node_id: node.radio.stats
                       for node_id, node in self.nodes.items()
                       if node.radio is not None}
        set_energy_gauges(self.metrics, model, now, radio_stats)
        airtimes = [
            {
                "time_transmitting": stats.time_transmitting,
                "time_receiving": stats.time_receiving,
            }
            for stats in radio_stats.values()
        ]
        delivered_bytes = self.metrics.total("tcp.flow*.bytes_delivered")
        return scenario_energy(model, now, airtimes, delivered_bytes)

    def _variant_label(self) -> str:
        """Result label: the single variant's label, or the joined mix.

        Uniform workloads (every flow on the scenario default) keep the
        legacy single-variant label, so existing result names — including
        the golden traces — are unchanged.
        """
        if self.workload.is_uniform(self.config.variant):
            return self.profile.label
        labels = []
        for profile in self.profiles:
            if profile.label not in labels:
                labels.append(profile.label)
        return "+".join(labels)

    def _flow_result(self, stats: FlowStats, flow_spec: FlowSpec,
                     variant_label: str, now: float) -> FlowResult:
        goodput_ci = None
        if stats.completed_batches >= 3:
            interval = stats.batch_goodput()
            goodput_bps = interval.mean * 8.0
            goodput_ci = interval
        else:
            start = stats.first_delivery_time if stats.first_delivery_time is not None else now
            duration = max(now - start, 1e-9)
            goodput_bps = stats.bytes_delivered * 8.0 / duration if stats.bytes_delivered else 0.0
        return FlowResult(
            flow_id=stats.flow_id,
            source=flow_spec.source,
            destination=flow_spec.destination,
            delivered_packets=stats.packets_delivered,
            goodput_bps=goodput_bps,
            goodput_ci=goodput_ci,
            retransmissions=stats.retransmissions,
            retransmissions_per_packet=stats.retransmissions_per_delivered_packet(),
            timeouts=stats.timeouts,
            average_window=stats.average_window(now),
            variant=variant_label,
            label=flow_spec.label,
        )


def run_scenario(
    spec_or_topology: Union[ScenarioSpec, Topology],
    config: Optional[ScenarioConfig] = None,
    tracer: Tracer = NULL_TRACER,
) -> ScenarioResult:
    """Convenience wrapper: build a :class:`Scenario` and run it.

    Accepts a :class:`~repro.experiments.workload.ScenarioSpec`
    (``run_scenario(spec)``) or the legacy ``(topology, config)`` pair.
    """
    return Scenario(spec_or_topology, config, tracer=tracer).run()


# ======================================================================
# Command-line front end
# ======================================================================
def main(argv: Optional[List[str]] = None) -> int:
    """Run a named scenario and (optionally) export its metrics as JSON.

    Examples::

        PYTHONPATH=src python -m repro.experiments.runner --list
        PYTHONPATH=src python -m repro.experiments.runner chain7-vegas-2mbps \\
            --metrics --packets 500 -o chain7_metrics.json

    With ``--metrics`` the exported JSON contains the full
    ``ScenarioResult.to_dict()`` payload including the ``timeseries``
    section (``tcp.flow1.cwnd``, ``mac.node3.queue_len``, …) — the raw
    material of the paper's time-evolution figures.
    """
    # Imported lazily: repro.experiments.scenarios imports this module.
    from repro.experiments.scenarios import available_scenarios, build_named_scenario

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run one named scenario, optionally exporting metric "
                    "time series (cwnd, queue occupancy, energy) as JSON.",
    )
    parser.add_argument("scenario", nargs="?", default="chain7-vegas-2mbps",
                        help="preset name (default: %(default)s); see --list")
    parser.add_argument("--list", action="store_true",
                        help="list available scenario presets and exit")
    parser.add_argument("--kernel-backend", default=None, metavar="NAME",
                        help="simulation-engine backend (see "
                             "--list-kernel-backends); backends are "
                             "dispatch-order equivalent, this is purely a "
                             "performance knob")
    parser.add_argument("--list-kernel-backends", action="store_true",
                        help="list registered kernel backends and exit")
    parser.add_argument("--link-layer", default=None, metavar="NAME",
                        help="link-layer profile (see --list-link-layers); "
                             "topologies with their own link plan, e.g. the "
                             "backbone presets, ignore this")
    parser.add_argument("--list-link-layers", action="store_true",
                        help="list registered link-layer profiles and exit")
    parser.add_argument("--metrics", action="store_true",
                        help="enable the time-series metrics plane")
    parser.add_argument("--metrics-interval", type=float, default=None,
                        metavar="S", help="probe sampling cadence in simulated "
                                          "seconds (default: config default)")
    parser.add_argument("--packets", type=int, default=None,
                        help="override the packet target")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the RNG seed")
    parser.add_argument("--max-sim-time", type=float, default=None,
                        help="override the simulated-time limit")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="write the full result (ScenarioResult.to_dict) "
                             "as JSON to this path")
    args = parser.parse_args(argv)

    if args.list:
        # available_scenarios() is sorted; keep the output stable for piping.
        for name in sorted(available_scenarios()):
            print(name)
        return 0
    if args.list_kernel_backends:
        for profile in kernel_backend_profiles():
            print(f"{profile.name}: {profile.description}")
        return 0
    if args.list_link_layers:
        for profile in link_layer_profiles():
            print(f"{profile.name}: {profile.description}")
        return 0

    overrides: Dict[str, object] = {}
    if args.kernel_backend is not None:
        overrides["kernel_backend"] = args.kernel_backend
    if args.link_layer is not None:
        overrides["link_layer"] = args.link_layer
    if args.metrics:
        overrides["metrics"] = True
    if args.metrics_interval is not None:
        overrides["metrics_interval"] = args.metrics_interval
    if args.packets is not None:
        overrides["packet_target"] = args.packets
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.max_sim_time is not None:
        overrides["max_sim_time"] = args.max_sim_time

    try:
        scenario = build_named_scenario(args.scenario, **overrides)
    except ConfigurationError as exc:
        # build_named_scenario's message already carries the difflib
        # "did you mean" suggestions and the --list pointer.
        print(exc, file=sys.stderr)
        return 2
    result = scenario.run()

    print(f"{result.name}: {result.delivered_packets} packets in "
          f"{result.simulated_time:.1f} s simulated, aggregate goodput "
          f"{result.aggregate_goodput_kbps:.1f} kbit/s")
    if result.timeseries is not None:
        print(f"{len(result.timeseries)} time series collected:")
        for name, data in sorted(result.timeseries.items()):
            values = data["values"]
            if not values:
                continue
            unit = f" {data['unit']}" if data.get("unit") else ""
            print(f"  {name}: {len(values)} samples, "
                  f"last {values[-1]:.4g}{unit}")

    if args.output is not None:
        from repro.core.io import atomic_write_text

        atomic_write_text(args.output, json.dumps(result.to_dict(), indent=2,
                                                  sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
