"""Analytic helpers for the optimally paced UDP transport (Section 4.2).

The paper derives the initial pacing interval from the minimal 4-hop
propagation delay of a single packet in the chain (Table 2): node *i* may only
transmit packet *p_j* once *p_{j-1}* has been forwarded by node *i + 3*, so the
natural spacing between injections is the time a packet needs to clear four
hops when there is no queueing and no contention.  The optimal interval is then
found by sweeping around that value (Figure 10); the sweep itself lives in
:mod:`repro.experiments.chain_experiments`.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.mac.timing import MacTiming, timing_for_bandwidth
from repro.net.headers import IpHeader, MacHeader, UdpHeader


def data_frame_size(payload_bytes: int = 1460) -> int:
    """Total MAC frame size of a UDP data packet with the given payload."""
    return payload_bytes + UdpHeader.SIZE + IpHeader.SIZE + MacHeader.SIZE_DATA


def single_hop_delay(timing: MacTiming, payload_bytes: int = 1460) -> float:
    """Time to move one packet across one hop with zero queueing.

    One clean DCF exchange: DIFS, then RTS/CTS/DATA/ACK separated by SIFS.
    Backoff is excluded, matching the paper's "minimal link layer propagation
    delay" definition.
    """
    return timing.difs + timing.unicast_exchange_duration(data_frame_size(payload_bytes))


def four_hop_propagation_delay(timing: MacTiming, payload_bytes: int = 1460) -> float:
    """The paper's Table 2 quantity: minimal delay to clear four hops."""
    return 4.0 * single_hop_delay(timing, payload_bytes)


def table2_propagation_delays(
    bandwidths_mbps: Iterable[float] = (2.0, 5.5, 11.0),
    payload_bytes: int = 1460,
) -> Dict[float, float]:
    """4-hop propagation delay (seconds) for each bandwidth, as in Table 2."""
    return {
        bandwidth: four_hop_propagation_delay(timing_for_bandwidth(bandwidth), payload_bytes)
        for bandwidth in bandwidths_mbps
    }


#: Multiplier applied to the 4-hop propagation delay to obtain the default
#: pacing interval.  The paper finds t_opt ≈ 35.7 ms at 2 Mbit/s versus a 29 ms
#: 4-hop delay (factor ≈ 1.23); in this simulator the offline sweep
#: (Figure 10 bench) puts the optimum near a factor of 1.35, which is used as
#: the default so the Fig. 6/11 comparisons run paced UDP near its optimum.
DEFAULT_INTERVAL_FACTOR = 1.35


def default_udp_interval(timing: MacTiming, payload_bytes: int = 1460) -> float:
    """Default pacing interval when no offline-tuned value is supplied.

    The interval is the 4-hop propagation delay scaled by
    :data:`DEFAULT_INTERVAL_FACTOR`; use the Figure 10 sweep
    (:func:`repro.experiments.chain_experiments.paced_udp_rate_sweep`) to tune
    it per bandwidth and topology.
    """
    return DEFAULT_INTERVAL_FACTOR * four_hop_propagation_delay(timing, payload_bytes)
