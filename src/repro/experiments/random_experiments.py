"""Random-topology experiments (Section 4.4.2: Figures 18-19 and Table 4).

120 nodes uniformly distributed on 2500 × 1000 m² with ten concurrent FTP
flows between randomly chosen endpoints.  As with the grid, a single set of
scenario runs provides the aggregate goodput per bandwidth (Fig. 18), the
per-flow breakdown at 11 Mbit/s (Fig. 19) and Jain's fairness index (Table 4).

The scaled-down defaults used by the benchmarks shrink the node count and the
number of flows (see ``benchmarks/bench_fig18_random_goodput.py``); the full
paper-scale topology is a parameter change.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.config import PAPER_BANDWIDTHS, ScenarioConfig, TransportVariant
from repro.experiments.grid_experiments import DEFAULT_MULTIFLOW_VARIANTS, fairness_table
from repro.experiments.results import ScenarioResult
from repro.experiments.study import StudyRunner, SweepSpec
from repro.topology.base import Topology
from repro.topology.random_topology import random_topology


def build_random_topology(
    node_count: int = 120,
    area: Tuple[float, float] = (2500.0, 1000.0),
    flow_count: int = 10,
    seed: int = 7,
) -> Topology:
    """Build the paper's random topology (or a scaled-down variant)."""
    return random_topology(
        node_count=node_count, area=area, flow_count=flow_count, seed=seed
    )


def random_topology_study(
    base_config: ScenarioConfig,
    topology: Topology,
    bandwidths: Sequence[float] = PAPER_BANDWIDTHS,
    variants: Sequence[TransportVariant] = DEFAULT_MULTIFLOW_VARIANTS,
    runner: Optional[StudyRunner] = None,
) -> Dict[TransportVariant, Dict[float, ScenarioResult]]:
    """Run every (variant, bandwidth) combination on a random topology.

    The same topology object is reused for every variant so that the
    comparison is on identical node placements and flow endpoints, exactly as
    in the paper.

    Returns:
        ``results[variant][bandwidth_mbps]`` → :class:`ScenarioResult`.
    """
    spec = SweepSpec(
        name="random-topology-study",
        topology=topology,
        axes={"variant": variants, "bandwidth_mbps": bandwidths},
        base=base_config,
    )
    study = (runner or StudyRunner()).run(spec)
    return study.nested("variant", "bandwidth_mbps", leaf=lambda p: p.run)


__all__ = [
    "build_random_topology",
    "random_topology_study",
    "fairness_table",
    "DEFAULT_MULTIFLOW_VARIANTS",
]
