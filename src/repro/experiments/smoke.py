"""Smoke-mode scaling for examples and ad-hoc scripts.

CI runs every example with ``REPRO_SMOKE=1`` to catch drift between the
examples and the library API without paying for full-scale simulations.
Scripts opt in by routing their scale knobs through :func:`smoke_scaled`::

    from repro.experiments.smoke import smoke_scaled

    parser.add_argument("--packets", type=int,
                        default=smoke_scaled(300, 40))
    parser.add_argument("--replications", type=int,
                        default=smoke_scaled(3, 1))

With ``REPRO_SMOKE`` unset (or ``0``/empty) the full-scale default is used;
any other value selects the reduced smoke default.  This mirrors the
``--smoke`` budget of ``benchmarks/perf`` but works through the environment
so CI does not need to know each script's flag spelling.
"""

from __future__ import annotations

import os
from typing import TypeVar

T = TypeVar("T")

#: Environment variable that switches smoke mode on.
SMOKE_ENV = "REPRO_SMOKE"


def smoke_mode() -> bool:
    """True when ``REPRO_SMOKE`` requests reduced-scale runs."""
    return os.environ.get(SMOKE_ENV, "").strip() not in ("", "0", "false", "no")


def smoke_scaled(full: T, smoke: T) -> T:
    """``smoke`` under ``REPRO_SMOKE``, ``full`` otherwise (works for scalar
    knobs and list-valued sweep defaults alike)."""
    return smoke if smoke_mode() else full
