"""The packet object exchanged between protocol layers.

A :class:`Packet` carries an application payload size plus a stack of headers
added as it descends the protocol stack.  Its :attr:`Packet.size` is the sum of
the payload and all attached header sizes, which is what the PHY uses for
serialization delay.  Packets are copied (not shared) when broadcast to several
receivers so per-hop mutation (TTL, MAC addressing) stays local.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import PacketError
from repro.net.headers import AodvHeader, IpHeader, MacHeader, TcpHeader, UdpHeader

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A simulated packet.

    Attributes:
        payload_size: Application payload in bytes.
        uid: Globally unique packet id (survives copies for tracing; copies of
            a broadcast share the uid on purpose).
        flow_id: Identifier of the end-to-end flow this packet belongs to, used
            for per-flow accounting.  ``None`` for control traffic.
        created_at: Simulation time at which the packet was created.
        mac: MAC header, present while the packet is at/below the link layer.
        ip: IP header, present for all routed packets.
        tcp: TCP header for TCP segments/ACKs.
        udp: UDP header for UDP datagrams.
        aodv: AODV header for routing control messages.
    """

    payload_size: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    flow_id: Optional[int] = None
    created_at: float = 0.0
    mac: Optional[MacHeader] = None
    ip: Optional[IpHeader] = None
    tcp: Optional[TcpHeader] = None
    udp: Optional[UdpHeader] = None
    aodv: Optional[AodvHeader] = None

    @property
    def size(self) -> int:
        """Total on-air size in bytes: payload plus all attached headers."""
        total = self.payload_size
        for header in (self.mac, self.ip, self.tcp, self.udp, self.aodv):
            if header is not None:
                total += header.size
        return total

    @property
    def network_size(self) -> int:
        """Size in bytes above the MAC layer (payload + IP/transport headers)."""
        total = self.payload_size
        for header in (self.ip, self.tcp, self.udp, self.aodv):
            if header is not None:
                total += header.size
        return total

    def copy(self) -> "Packet":
        """Return an independent copy of this packet (same uid, fresh headers).

        Implemented with explicit per-header copies rather than
        :func:`copy.deepcopy`: the channel copies every frame once per
        potential receiver, so this is one of the hottest paths in the
        simulator.
        """
        aodv = None
        if self.aodv is not None:
            aodv = copy.copy(self.aodv)
            aodv.unreachable = list(self.aodv.unreachable)
        return Packet(
            payload_size=self.payload_size,
            uid=self.uid,
            flow_id=self.flow_id,
            created_at=self.created_at,
            mac=copy.copy(self.mac) if self.mac is not None else None,
            ip=copy.copy(self.ip) if self.ip is not None else None,
            tcp=copy.copy(self.tcp) if self.tcp is not None else None,
            udp=copy.copy(self.udp) if self.udp is not None else None,
            aodv=aodv,
        )

    # ------------------------------------------------------------------
    # Header accessors that raise a clear error when a layer is missing.
    # ------------------------------------------------------------------
    def require_ip(self) -> IpHeader:
        """Return the IP header or raise :class:`PacketError` if absent."""
        if self.ip is None:
            raise PacketError(f"packet {self.uid} has no IP header")
        return self.ip

    def require_mac(self) -> MacHeader:
        """Return the MAC header or raise :class:`PacketError` if absent."""
        if self.mac is None:
            raise PacketError(f"packet {self.uid} has no MAC header")
        return self.mac

    def require_tcp(self) -> TcpHeader:
        """Return the TCP header or raise :class:`PacketError` if absent."""
        if self.tcp is None:
            raise PacketError(f"packet {self.uid} has no TCP header")
        return self.tcp

    def require_udp(self) -> UdpHeader:
        """Return the UDP header or raise :class:`PacketError` if absent."""
        if self.udp is None:
            raise PacketError(f"packet {self.uid} has no UDP header")
        return self.udp

    def require_aodv(self) -> AodvHeader:
        """Return the AODV header or raise :class:`PacketError` if absent."""
        if self.aodv is None:
            raise PacketError(f"packet {self.uid} has no AODV header")
        return self.aodv

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"uid={self.uid}", f"size={self.size}"]
        if self.ip is not None:
            parts.append(f"ip={self.ip.src}->{self.ip.dst}/{self.ip.protocol.value}")
        if self.tcp is not None:
            parts.append(f"tcp seq={self.tcp.seq} ack={self.tcp.ack}")
        if self.udp is not None:
            parts.append(f"udp seq={self.udp.seq}")
        if self.aodv is not None:
            parts.append(f"aodv {self.aodv.message_type.value}")
        if self.mac is not None:
            parts.append(f"mac {self.mac.frame_type.value} {self.mac.src}->{self.mac.dst}")
        return f"Packet({', '.join(parts)})"
