"""The packet object exchanged between protocol layers.

A :class:`Packet` carries an application payload size plus a stack of headers
added as it descends the protocol stack.  Its :attr:`Packet.size` is the sum of
the payload and all attached header sizes, which is what the PHY uses for
serialization delay.  Packets are copied (not shared) when broadcast to several
receivers so per-hop mutation (TTL, MAC addressing) stays local.

Packets and their headers use ``__slots__`` and hand-rolled ``copy`` paths:
the channel clones every frame once per potential receiver, making packet
copying one of the hottest allocation sites in the simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import PacketError
from repro.net.headers import AodvHeader, IpHeader, MacHeader, TcpHeader, UdpHeader

_packet_ids = itertools.count(1)


def next_packet_id() -> int:
    """Draw the next uid from the global packet counter.

    Fast constructors that build packets with ``__new__`` (bypassing the
    dataclass ``__init__`` and its ``default_factory``) must draw their uid
    through this helper so the counter advances exactly as if the dataclass
    constructor had run — pinned golden traces depend on it.
    """
    return next(_packet_ids)


def reset_packet_ids() -> None:
    """Restart the global packet uid counter at 1.

    Intended for tests and benchmarks that pin deterministic traces: packet
    uids appear in trace records, so reproducing a golden trace requires the
    counter to start from a known state.
    """
    global _packet_ids
    _packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """A simulated packet.

    Attributes:
        payload_size: Application payload in bytes.
        uid: Globally unique packet id (survives copies for tracing; copies of
            a broadcast share the uid on purpose).
        flow_id: Identifier of the end-to-end flow this packet belongs to, used
            for per-flow accounting.  ``None`` for control traffic.
        created_at: Simulation time at which the packet was created.
        mac: MAC header, present while the packet is at/below the link layer.
        ip: IP header, present for all routed packets.
        tcp: TCP header for TCP segments/ACKs.
        udp: UDP header for UDP datagrams.
        aodv: AODV header for routing control messages.
    """

    payload_size: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    flow_id: Optional[int] = None
    created_at: float = 0.0
    mac: Optional[MacHeader] = None
    ip: Optional[IpHeader] = None
    tcp: Optional[TcpHeader] = None
    udp: Optional[UdpHeader] = None
    aodv: Optional[AodvHeader] = None

    @property
    def size(self) -> int:
        """Total on-air size in bytes: payload plus all attached headers."""
        total = self.payload_size
        if self.mac is not None:
            total += self.mac.size
        if self.ip is not None:
            total += self.ip.size
        if self.tcp is not None:
            total += self.tcp.size
        if self.udp is not None:
            total += self.udp.size
        if self.aodv is not None:
            total += self.aodv.size
        return total

    @property
    def network_size(self) -> int:
        """Size in bytes above the MAC layer (payload + IP/transport headers)."""
        total = self.payload_size
        if self.ip is not None:
            total += self.ip.size
        if self.tcp is not None:
            total += self.tcp.size
        if self.udp is not None:
            total += self.udp.size
        if self.aodv is not None:
            total += self.aodv.size
        return total

    def copy(self) -> "Packet":
        """Return an independent copy of this packet (same uid, fresh headers).

        Implemented with ``__new__`` plus per-header ``clone()`` calls rather
        than :func:`copy.deepcopy` or the dataclass constructor: the channel
        copies every frame once per potential receiver, so this is one of the
        hottest paths in the simulator.
        """
        new = object.__new__(Packet)
        new.payload_size = self.payload_size
        new.uid = self.uid
        new.flow_id = self.flow_id
        new.created_at = self.created_at
        mac = self.mac
        new.mac = mac.clone() if mac is not None else None
        ip = self.ip
        new.ip = ip.clone() if ip is not None else None
        tcp = self.tcp
        new.tcp = tcp.clone() if tcp is not None else None
        udp = self.udp
        new.udp = udp.clone() if udp is not None else None
        aodv = self.aodv
        new.aodv = aodv.clone() if aodv is not None else None
        return new

    # ------------------------------------------------------------------
    # Header accessors that raise a clear error when a layer is missing.
    # ------------------------------------------------------------------
    def require_ip(self) -> IpHeader:
        """Return the IP header or raise :class:`PacketError` if absent."""
        if self.ip is None:
            raise PacketError(f"packet {self.uid} has no IP header")
        return self.ip

    def require_mac(self) -> MacHeader:
        """Return the MAC header or raise :class:`PacketError` if absent."""
        if self.mac is None:
            raise PacketError(f"packet {self.uid} has no MAC header")
        return self.mac

    def require_tcp(self) -> TcpHeader:
        """Return the TCP header or raise :class:`PacketError` if absent."""
        if self.tcp is None:
            raise PacketError(f"packet {self.uid} has no TCP header")
        return self.tcp

    def require_udp(self) -> UdpHeader:
        """Return the UDP header or raise :class:`PacketError` if absent."""
        if self.udp is None:
            raise PacketError(f"packet {self.uid} has no UDP header")
        return self.udp

    def require_aodv(self) -> AodvHeader:
        """Return the AODV header or raise :class:`PacketError` if absent."""
        if self.aodv is None:
            raise PacketError(f"packet {self.uid} has no AODV header")
        return self.aodv

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"uid={self.uid}", f"size={self.size}"]
        if self.ip is not None:
            parts.append(f"ip={self.ip.src}->{self.ip.dst}/{self.ip.protocol.value}")
        if self.tcp is not None:
            parts.append(f"tcp seq={self.tcp.seq} ack={self.tcp.ack}")
        if self.udp is not None:
            parts.append(f"udp seq={self.udp.seq}")
        if self.aodv is not None:
            parts.append(f"aodv {self.aodv.message_type.value}")
        if self.mac is not None:
            parts.append(f"mac {self.mac.frame_type.value} {self.mac.src}->{self.mac.dst}")
        return f"Packet({', '.join(parts)})"
