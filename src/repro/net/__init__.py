"""Network-layer primitives: packets, headers, addressing and the node object."""

from repro.net.address import FlowAddress, is_broadcast, validate_node_id
from repro.net.headers import (
    BROADCAST,
    AodvHeader,
    AodvMessageType,
    IpHeader,
    IpProtocol,
    MacFrameType,
    MacHeader,
    TcpFlag,
    TcpHeader,
    UdpHeader,
)
from repro.net.packet import Packet

__all__ = [
    "FlowAddress",
    "is_broadcast",
    "validate_node_id",
    "BROADCAST",
    "AodvHeader",
    "AodvMessageType",
    "IpHeader",
    "IpProtocol",
    "MacFrameType",
    "MacHeader",
    "TcpFlag",
    "TcpHeader",
    "UdpHeader",
    "Packet",
]
