"""A wireless node: the full protocol stack wired together.

Each node owns one radio on the shared channel, an interface queue, an
802.11 DCF MAC, a routing agent (AODV by default, static optionally) and any
number of transport agents demultiplexed by destination port::

    application(s)
        |                (FTP / CBR)
    transport agents     (TCP NewReno / Vegas senders, sinks, UDP)
        |
    routing agent        (AODV or static)
        |
    interface queue      (DropTail, 50 packets)
        |
    802.11 DCF MAC
        |
    radio  --- shared wireless channel <--- mobility manager (moves nodes)

The ``position`` passed at construction is the node's *initial* placement; in
mobile scenarios a :class:`repro.mobility.base.MobilityManager` updates the
authoritative position held by the channel (``channel.position_of(node_id)``)
as the simulation runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.engine import Simulator
from repro.core.errors import ConfigurationError
from repro.core.randomness import RandomManager
from repro.core.tracing import NULL_TRACER, Tracer
from repro.mac.ieee80211 import Ieee80211Mac
from repro.mac.queue import DropTailQueue
from repro.mac.timing import MacTiming
from repro.metrics import MetricsRegistry, NULL_METRICS
from repro.net.headers import IpProtocol
from repro.net.packet import Packet
from repro.phy.channel import WirelessChannel
from repro.phy.propagation import Position
from repro.phy.radio import Radio
from repro.routing.aodv import AodvConfig, AodvRouting
from repro.routing.base import RoutingProtocol
from repro.routing.static import StaticRouting
from repro.transport.tcp_base import TransportAgent


class Node:
    """One wireless node with its complete protocol stack.

    Args:
        sim: Simulation engine.
        node_id: Unique non-negative node identifier.
        position: 2-D position on the plane (metres).
        channel: Shared wireless channel.
        timing: MAC timing parameters (bandwidth dependent).
        randomness: Random-stream manager; the node derives per-layer streams.
        routing: ``"aodv"`` (default), ``"static"``, or a pre-built routing
            protocol instance.
        queue_capacity: Interface queue size in packets (the paper uses 50).
        aodv_config: Optional AODV constants override.
        tracer: Optional tracer shared across the stack.
        metrics: Optional metrics registry shared across the stack; every
            layer of this node registers its instruments under
            ``<layer>.node<N>.*``.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        position: Position,
        channel: WirelessChannel,
        timing: MacTiming,
        randomness: RandomManager,
        routing: Union[str, RoutingProtocol] = "aodv",
        queue_capacity: int = DropTailQueue.DEFAULT_CAPACITY,
        aodv_config: Optional[AodvConfig] = None,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.position = position
        self.tracer = tracer
        self.metrics = metrics

        self.radio = Radio(
            sim, node_id, channel,
            capture_threshold=channel.propagation.capture_threshold,
            tracer=tracer,
            metrics=metrics,
        )
        channel.register(self.radio, position)
        self.queue = DropTailQueue(capacity=queue_capacity)
        self.mac = Ieee80211Mac(
            sim=sim,
            node_id=node_id,
            radio=self.radio,
            queue=self.queue,
            timing=timing,
            rng=randomness.stream(f"mac.{node_id}"),
            tracer=tracer,
            metrics=metrics,
        )
        self.routing = self._build_routing(routing, randomness, aodv_config)
        self.mac.listener = self.routing
        self._agents: Dict[int, TransportAgent] = {}
        #: Link-layer devices owned by this node, primary interface first.
        #: Single-radio nodes have exactly one entry; gateway nodes append
        #: their wired port (see :func:`repro.link.gateway.make_gateway`).
        self.devices: list = [self.mac]

    def add_device(self, device: object) -> None:
        """Attach an additional link-layer device (e.g. a gateway's wired port)."""
        self.devices.append(device)

    def _build_routing(
        self,
        routing: Union[str, RoutingProtocol],
        randomness: RandomManager,
        aodv_config: Optional[AodvConfig],
    ) -> RoutingProtocol:
        if isinstance(routing, RoutingProtocol):
            return routing
        if routing == "aodv":
            return AodvRouting(
                sim=self.sim,
                node_id=self.node_id,
                queue=self.queue,
                deliver_local=self.deliver_local,
                rng=randomness.stream(f"aodv.{self.node_id}"),
                config=aodv_config,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        if routing == "static":
            return StaticRouting(
                sim=self.sim,
                node_id=self.node_id,
                queue=self.queue,
                deliver_local=self.deliver_local,
                next_hops={},
                tracer=self.tracer,
                metrics=self.metrics,
            )
        raise ConfigurationError(f"unknown routing protocol {routing!r}")

    # ------------------------------------------------------------------
    # Transport agent management
    # ------------------------------------------------------------------
    def register_agent(self, agent: TransportAgent) -> None:
        """Install a transport agent listening on its ``local_port``."""
        if agent.local_node != self.node_id:
            raise ConfigurationError(
                f"agent for node {agent.local_node} registered on node {self.node_id}"
            )
        if agent.local_port in self._agents:
            raise ConfigurationError(
                f"port {agent.local_port} already bound on node {self.node_id}"
            )
        self._agents[agent.local_port] = agent
        agent.attach(self.send_from_transport)

    def agent_on_port(self, port: int) -> Optional[TransportAgent]:
        """Return the agent bound to ``port``, if any."""
        return self._agents.get(port)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send_from_transport(self, packet: Packet) -> None:
        """Hand a locally generated IP packet to the routing layer."""
        self.routing.send_packet(packet)

    def deliver_local(self, packet: Packet) -> None:
        """Deliver a packet addressed to this node to the right transport agent."""
        ip = packet.require_ip()
        port: Optional[int] = None
        if ip.protocol is IpProtocol.TCP and packet.tcp is not None:
            port = packet.tcp.dst_port
        elif ip.protocol is IpProtocol.UDP and packet.udp is not None:
            port = packet.udp.dst_port
        if port is None:
            return
        agent = self._agents.get(port)
        if agent is not None:
            agent.receive(packet)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id} @ {self.position.x:.0f},{self.position.y:.0f})"
