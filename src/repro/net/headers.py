"""Protocol header definitions.

Headers are slotted dataclasses attached to a :class:`repro.net.packet.Packet`.
Each header type declares a ``SIZE`` (bytes) contributing to the on-air size of
the packet, mirroring the header overheads ns-2 accounts for.

Headers are copied once per potential receiver on every transmission, so each
class provides a ``clone()`` that builds the copy with ``__new__`` plus direct
slot assignment — measurably cheaper than :func:`copy.copy`, which routes
slotted instances through ``__reduce_ex__``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class MacFrameType(enum.Enum):
    """IEEE 802.11 frame types modelled by the simulator."""

    RTS = "RTS"
    CTS = "CTS"
    DATA = "DATA"
    ACK = "ACK"


#: Broadcast MAC/IP address.
BROADCAST = -1


@dataclass(slots=True)
class MacHeader:
    """IEEE 802.11 MAC header.

    Attributes:
        frame_type: RTS, CTS, DATA or ACK.
        src: Transmitting node id.
        dst: Destination node id (``BROADCAST`` for broadcast frames).
        duration: NAV duration in seconds announced by this frame, i.e. the
            remaining time the medium will be occupied by the exchange.
        retry: True if this is a retransmitted frame.
    """

    SIZE_DATA = 34     # bytes: 802.11 data MAC header + FCS
    SIZE_RTS = 20
    SIZE_CTS = 14
    SIZE_ACK = 14

    frame_type: MacFrameType
    src: int
    dst: int
    duration: float = 0.0
    retry: bool = False

    def clone(self) -> "MacHeader":
        """Fast field-for-field copy."""
        new = object.__new__(MacHeader)
        new.frame_type = self.frame_type
        new.src = self.src
        new.dst = self.dst
        new.duration = self.duration
        new.retry = self.retry
        return new

    @property
    def size(self) -> int:
        """On-air size in bytes of this header (or of the whole control frame)."""
        if self.frame_type is MacFrameType.RTS:
            return self.SIZE_RTS
        if self.frame_type is MacFrameType.CTS:
            return self.SIZE_CTS
        if self.frame_type is MacFrameType.ACK:
            return self.SIZE_ACK
        return self.SIZE_DATA

    @property
    def is_broadcast(self) -> bool:
        """True if the frame is addressed to the broadcast address."""
        return self.dst == BROADCAST


class IpProtocol(enum.Enum):
    """Transport protocol selector carried in the IP header."""

    TCP = "TCP"
    UDP = "UDP"
    AODV = "AODV"


@dataclass(slots=True)
class IpHeader:
    """Minimal IP header: addressing, TTL and protocol demultiplexing."""

    SIZE = 20

    src: int
    dst: int
    protocol: IpProtocol
    ttl: int = 64

    def clone(self) -> "IpHeader":
        """Fast field-for-field copy."""
        new = object.__new__(IpHeader)
        new.src = self.src
        new.dst = self.dst
        new.protocol = self.protocol
        new.ttl = self.ttl
        return new

    @property
    def size(self) -> int:
        """On-air size in bytes."""
        return self.SIZE

    @property
    def is_broadcast(self) -> bool:
        """True if the datagram is addressed to the broadcast address."""
        return self.dst == BROADCAST


class TcpFlag(enum.Flag):
    """TCP control flags used by the packet-level agents."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()


@dataclass(slots=True)
class TcpHeader:
    """Packet-level TCP header.

    Sequence and acknowledgement numbers are in *segments* (packets), matching
    the abstraction of ns-2's one-way TCP agents that the paper uses.

    Attributes:
        src_port: Source port (identifies the flow at the sender).
        dst_port: Destination port.
        seq: Segment sequence number of this packet (data packets).
        ack: Cumulative acknowledgement: next segment expected by the receiver.
        flags: TCP control flags.
        window: Receiver advertised window in segments.
        timestamp: Sender timestamp echoed by the receiver, used for
            fine-grained RTT measurement (Vegas).
        echo_timestamp: Timestamp echoed back by the receiver in ACKs.
    """

    SIZE = 20

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TcpFlag = TcpFlag.NONE
    window: int = 64
    timestamp: float = 0.0
    echo_timestamp: float = 0.0

    def clone(self) -> "TcpHeader":
        """Fast field-for-field copy."""
        new = object.__new__(TcpHeader)
        new.src_port = self.src_port
        new.dst_port = self.dst_port
        new.seq = self.seq
        new.ack = self.ack
        new.flags = self.flags
        new.window = self.window
        new.timestamp = self.timestamp
        new.echo_timestamp = self.echo_timestamp
        return new

    @property
    def size(self) -> int:
        """On-air size in bytes."""
        return self.SIZE

    @property
    def is_ack(self) -> bool:
        """True if the ACK flag is set."""
        return bool(self.flags & TcpFlag.ACK)


@dataclass(slots=True)
class UdpHeader:
    """UDP header: ports plus a sequence number for loss accounting."""

    SIZE = 8

    src_port: int
    dst_port: int
    seq: int = 0

    def clone(self) -> "UdpHeader":
        """Fast field-for-field copy."""
        new = object.__new__(UdpHeader)
        new.src_port = self.src_port
        new.dst_port = self.dst_port
        new.seq = self.seq
        return new

    @property
    def size(self) -> int:
        """On-air size in bytes."""
        return self.SIZE


class AodvMessageType(enum.Enum):
    """AODV control message types."""

    RREQ = "RREQ"
    RREP = "RREP"
    RERR = "RERR"


@dataclass(slots=True)
class AodvHeader:
    """AODV control message header (RFC 3561, simplified).

    Attributes:
        message_type: RREQ, RREP or RERR.
        originator: Node that originated the route request / reply target.
        destination: Node whose route is requested / replied.
        originator_seq: Originator sequence number (RREQ).
        destination_seq: Destination sequence number.
        hop_count: Hops traversed so far.
        rreq_id: Per-originator RREQ identifier for duplicate suppression.
        unreachable: List of (destination, seq) pairs for RERR messages.
    """

    SIZE = 24

    message_type: AodvMessageType
    originator: int = -1
    destination: int = -1
    originator_seq: int = 0
    destination_seq: int = 0
    hop_count: int = 0
    rreq_id: int = 0
    unreachable: List[Tuple[int, int]] = field(default_factory=list)

    def clone(self) -> "AodvHeader":
        """Fast field-for-field copy (the unreachable list is copied, not shared)."""
        new = object.__new__(AodvHeader)
        new.message_type = self.message_type
        new.originator = self.originator
        new.destination = self.destination
        new.originator_seq = self.originator_seq
        new.destination_seq = self.destination_seq
        new.hop_count = self.hop_count
        new.rreq_id = self.rreq_id
        new.unreachable = list(self.unreachable)
        return new

    @property
    def size(self) -> int:
        """On-air size in bytes."""
        return self.SIZE
