"""Addressing helpers.

Nodes are addressed by small non-negative integers; flows by (src node, src
port, dst node, dst port) tuples.  This module centralizes those conventions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.headers import BROADCAST


@dataclass(frozen=True)
class FlowAddress:
    """Identifies one end-to-end transport flow."""

    src_node: int
    src_port: int
    dst_node: int
    dst_port: int

    def reversed(self) -> "FlowAddress":
        """Return the address of the reverse (ACK) direction."""
        return FlowAddress(
            src_node=self.dst_node,
            src_port=self.dst_port,
            dst_node=self.src_node,
            dst_port=self.src_port,
        )

    def __str__(self) -> str:
        return f"{self.src_node}:{self.src_port}->{self.dst_node}:{self.dst_port}"


def is_broadcast(address: int) -> bool:
    """True if ``address`` is the broadcast address."""
    return address == BROADCAST


def validate_node_id(node_id: int) -> int:
    """Validate and return a node id.

    Raises:
        ValueError: If the id is negative and not the broadcast address.
    """
    if node_id < 0 and node_id != BROADCAST:
        raise ValueError(f"invalid node id {node_id}")
    return node_id
