"""Abstract layer contracts.

These small abstract base classes document the interfaces between layers and
allow tests to substitute lightweight fakes (e.g. a scripted MAC below a real
TCP agent).  Concrete implementations live in :mod:`repro.phy`,
:mod:`repro.mac`, :mod:`repro.routing` and :mod:`repro.transport`.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.net.packet import Packet


class PhyListener(abc.ABC):
    """Callbacks a PHY delivers to the layer above it (the MAC)."""

    @abc.abstractmethod
    def on_frame_received(self, packet: Packet) -> None:
        """A frame was successfully received (addressed to anyone)."""

    @abc.abstractmethod
    def on_carrier_busy(self) -> None:
        """The physical carrier transitioned from idle to busy."""

    @abc.abstractmethod
    def on_carrier_idle(self) -> None:
        """The physical carrier transitioned from busy to idle."""


class MacListener(abc.ABC):
    """Callbacks the MAC delivers to the layer above it (routing/queue owner)."""

    @abc.abstractmethod
    def on_mac_delivery(self, packet: Packet) -> None:
        """A unicast or broadcast data frame addressed to this node arrived."""

    @abc.abstractmethod
    def on_mac_send_failure(self, packet: Packet, next_hop: int) -> None:
        """The MAC gave up on ``packet`` after exhausting its retry limits."""

    @abc.abstractmethod
    def on_mac_send_success(self, packet: Packet, next_hop: int) -> None:
        """The MAC completed the frame exchange for ``packet``."""


class RoutingListener(abc.ABC):
    """Callbacks the routing layer delivers to the node that owns it."""

    @abc.abstractmethod
    def on_packet_for_host(self, packet: Packet) -> None:
        """A data packet destined to this node should go up to transport."""


class TransportListener(abc.ABC):
    """Callbacks a transport agent delivers to the application above it."""

    @abc.abstractmethod
    def on_can_send(self) -> None:
        """The transport agent can accept more application data."""

    @abc.abstractmethod
    def on_data_delivered(self, num_bytes: int) -> None:
        """``num_bytes`` of application data arrived in order at the receiver."""


class PacketSink(abc.ABC):
    """Anything that accepts packets handed down from an upper layer."""

    @abc.abstractmethod
    def accept(self, packet: Packet) -> None:
        """Accept a packet for transmission/processing."""
