"""Traffic-generating applications: persistent FTP and CBR."""

from repro.app.base import Application
from repro.app.cbr import CbrApplication
from repro.app.ftp import FtpApplication

__all__ = ["Application", "CbrApplication", "FtpApplication"]
