"""Application base class.

Applications sit on top of a transport agent and only decide *when* data is
generated; the transport decides *how* it is carried.  The two applications in
this study are persistent FTP (drives a TCP sender) and CBR (drives a paced
UDP sender).
"""

from __future__ import annotations

import abc

from repro.core.engine import Simulator


class Application(abc.ABC):
    """Base class for traffic-generating applications."""

    def __init__(self, sim: Simulator, start_time: float = 0.0) -> None:
        self.sim = sim
        self.start_time = start_time
        self._started = False

    def schedule_start(self) -> None:
        """Schedule the application to start at its configured start time."""
        delay = max(0.0, self.start_time - self.sim.now)
        self.sim.schedule(delay, self._start_once)

    def _start_once(self) -> None:
        if self._started:
            return
        self._started = True
        self.on_start()

    @property
    def started(self) -> bool:
        """True once the application has begun generating traffic."""
        return self._started

    @abc.abstractmethod
    def on_start(self) -> None:
        """Begin generating traffic."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Stop generating traffic."""
