"""Application base class.

Applications sit on top of a transport agent and only decide *when* data is
generated; the transport decides *how* it is carried.  The two applications in
this study are persistent FTP (drives a TCP sender) and CBR (drives a paced
UDP sender).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.engine import Simulator
from repro.metrics import Counter, Gauge, MetricsRegistry


class Application(abc.ABC):
    """Base class for traffic-generating applications."""

    def __init__(self, sim: Simulator, start_time: float = 0.0) -> None:
        self.sim = sim
        self.start_time = start_time
        self._started = False
        self._starts_counter: Optional[Counter] = None
        self._started_at_gauge: Optional[Gauge] = None

    def bind_metrics(self, registry: MetricsRegistry, prefix: str) -> None:
        """Register the application's instruments under ``prefix``.

        Called by the scenario runner after construction (applications are
        built by transport-profile factories that know nothing about the
        metrics plane).  Registers ``<prefix>.starts`` and
        ``<prefix>.started_at``.
        """
        self._starts_counter = registry.counter(
            f"{prefix}.starts", description="Times the application started.")
        self._started_at_gauge = registry.gauge(
            f"{prefix}.started_at", unit="s",
            description="Simulated time traffic generation began.")

    def schedule_start(self) -> None:
        """Schedule the application to start at its configured start time."""
        delay = max(0.0, self.start_time - self.sim.now)
        self.sim.schedule(delay, self._start_once)

    def start_now(self) -> None:
        """Start generating traffic immediately (idempotent).

        Used by scenario-timeline ``flow-start`` events, whose flows are not
        auto-scheduled; calling it on an already-started application is a
        no-op.  The event takes over the flow's schedule entirely, so a
        configured ``start_time`` later than now is pulled forward
        (subclasses that copy the start time into a helper object must keep
        that copy in sync — see ``CbrApplication.start_now``).
        """
        self.start_time = min(self.start_time, self.sim.now)
        self._start_once()

    def _start_once(self) -> None:
        if self._started:
            return
        self._started = True
        if self._starts_counter is not None:
            self._starts_counter.inc()
            self._started_at_gauge.set(self.sim.now)
        self.on_start()

    @property
    def started(self) -> bool:
        """True once the application has begun generating traffic."""
        return self._started

    @abc.abstractmethod
    def on_start(self) -> None:
        """Begin generating traffic."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Stop generating traffic."""
