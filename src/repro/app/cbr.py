"""Constant-bit-rate application (drives the paced UDP source).

Used to model the paper's "optimally paced UDP": one 1460-byte datagram every
*t* seconds, with *t* chosen offline for maximum goodput (Figure 10).
"""

from __future__ import annotations

from typing import Optional

from repro.app.base import Application
from repro.core.engine import Simulator
from repro.transport.udp import PacedUdpSource, UdpSender


class CbrApplication(Application):
    """Constant-bit-rate traffic generator on top of a UDP sender."""

    def __init__(
        self,
        sim: Simulator,
        sender: UdpSender,
        interval: float,
        start_time: float = 0.0,
        packet_limit: Optional[int] = None,
    ) -> None:
        super().__init__(sim, start_time)
        self.source = PacedUdpSource(
            sim=sim,
            sender=sender,
            interval=interval,
            start_time=start_time,
            packet_limit=packet_limit,
        )

    @property
    def interval(self) -> float:
        """Inter-packet transmission time *t* in seconds."""
        return self.source.interval

    def start_now(self) -> None:
        """Start pacing immediately (scenario-timeline ``flow-start``).

        The source holds its own copy of ``start_time`` and re-applies the
        delay in :meth:`~repro.transport.udp.PacedUdpSource.start`; a
        timeline event takes over the schedule, so pull the source's start
        up to now before starting.
        """
        self.source.start_time = min(self.source.start_time, self.sim.now)
        super().start_now()

    def on_start(self) -> None:
        """Start the CBR source."""
        self.source.start()

    def stop(self) -> None:
        """Stop the CBR source."""
        self.source.stop()
