"""Persistent FTP application.

The paper simulates "continuous FTP flows": the application always has data to
send, so the TCP sender is never application-limited.  The FTP application here
simply starts its TCP sender at the configured time; the sender's optional
``data_limit_packets`` can be used for finite transfers in tests.
"""

from __future__ import annotations

from repro.app.base import Application
from repro.core.engine import Simulator
from repro.transport.tcp_base import TcpSender


class FtpApplication(Application):
    """Drives a TCP sender as an infinite (or bounded) file transfer."""

    def __init__(self, sim: Simulator, sender: TcpSender, start_time: float = 0.0) -> None:
        super().__init__(sim, start_time)
        self.sender = sender

    def on_start(self) -> None:
        """Start the underlying TCP sender."""
        self.sender.start()

    def stop(self) -> None:
        """Stop the underlying TCP sender."""
        self.sender.stop()
