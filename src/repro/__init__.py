"""repro — reproduction of *Improving TCP Performance for Multihop Wireless Networks*.

A pure-Python discrete-event simulator of static and mobile multihop IEEE
802.11 networks (DCF MAC with RTS/CTS, AODV routing, DropTail interface
queues, pluggable node mobility) together with packet-level TCP NewReno, TCP
Vegas, dynamic ACK thinning and an optimally paced UDP source, plus the
experiment harness that regenerates every table and figure of the DSN 2005
paper by ElRakabawy, Lindemann and Vernon — and extends its static scenarios
with mobile ones (``ScenarioConfig(mobility="random-waypoint")``).

Typical use (single scenario)::

    from repro import ScenarioConfig, TransportVariant, chain_topology, run_scenario

    result = run_scenario(
        chain_topology(hops=7),
        ScenarioConfig(variant=TransportVariant.VEGAS, bandwidth_mbps=2.0,
                       packet_target=500),
    )
    print(result.aggregate_goodput_kbps, "kbit/s")

Declarative sweep with seed replication, parallel execution and crash-safe
checkpointing (an interrupted study resumes from ``cache_dir``, re-executing
only the missing items)::

    from repro import ScenarioConfig, SweepSpec, run_study

    spec = SweepSpec(topology="chain",
                     axes={"variant": ["vegas", "newreno"], "hops": [2, 4, 8]},
                     base=ScenarioConfig(packet_target=250), replications=3)
    study = run_study(spec, parallel=True, cache_dir=".study-cache")
    for point in study.points:
        print(point.values, point.goodput_interval)
"""

from repro.experiments.config import (
    DEFAULT_HOP_COUNTS,
    PAPER_BANDWIDTHS,
    PAPER_HOP_COUNTS,
    ScenarioConfig,
    TransportVariant,
)
from repro.experiments.results import FlowResult, ScenarioResult, format_table
from repro.experiments.runner import Scenario, run_scenario
from repro.experiments.scenarios import available_scenarios, build_named_scenario
from repro.experiments.workload import (
    FlowSpec,
    ScenarioBuilder,
    ScenarioEvent,
    ScenarioSpec,
    Workload,
    mixed_transport_workload,
)
from repro.experiments.exec import (
    ResultStore,
    backend_names,
    execute_study,
    register_backend,
)
from repro.experiments.study import (
    PointResult,
    Study,
    StudyResult,
    StudyRunner,
    SweepSpec,
    run_study,
)
from repro.metrics import Counter, Gauge, MetricsRegistry, TimeSeries
from repro.mobility.registry import (
    MobilityProfile,
    get_mobility,
    mobility_names,
    register_mobility,
)
from repro.topology.chain import chain_topology
from repro.topology.grid import grid_topology
from repro.topology.random_topology import random_topology
from repro.topology.registry import (
    TopologyProfile,
    build_topology,
    register_topology,
    topology_names,
)
from repro.transport.registry import (
    TransportProfile,
    get_transport,
    register_transport,
    transport_names,
)

__version__ = "1.0.0"

__all__ = [
    "ScenarioConfig",
    "TransportVariant",
    "PAPER_BANDWIDTHS",
    "PAPER_HOP_COUNTS",
    "DEFAULT_HOP_COUNTS",
    "FlowResult",
    "ScenarioResult",
    "format_table",
    "Scenario",
    "run_scenario",
    "FlowSpec",
    "Workload",
    "ScenarioEvent",
    "ScenarioSpec",
    "ScenarioBuilder",
    "mixed_transport_workload",
    "available_scenarios",
    "build_named_scenario",
    "PointResult",
    "Study",
    "StudyResult",
    "StudyRunner",
    "SweepSpec",
    "run_study",
    "ResultStore",
    "backend_names",
    "execute_study",
    "register_backend",
    "chain_topology",
    "grid_topology",
    "random_topology",
    "TopologyProfile",
    "build_topology",
    "register_topology",
    "topology_names",
    "TransportProfile",
    "get_transport",
    "register_transport",
    "transport_names",
    "MobilityProfile",
    "get_mobility",
    "register_mobility",
    "mobility_names",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "TimeSeries",
    "__version__",
]
