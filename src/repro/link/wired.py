"""Shared-bus Ethernet-style wired link layer.

A :class:`WiredBus` models one half-duplex broadcast segment in the classic
10BASE-style CSMA/CD shape, at frame granularity:

* Ports carrier-sense the bus before transmitting (1-persistent: a frame that
  arrives while the bus is busy waits for the bus to go idle).
* The propagation delay is the collision vulnerability window — a port only
  *hears* a transmission ``propagation_delay`` seconds after it starts, so
  two ports starting within that window collide and both frames are lost.
* Colliding senders back off for a uniform number of 512-bit slot times drawn
  from the binary-exponential window ``[0, 2^min(attempts, 10) - 1]`` and
  retry, giving up (and telling the routing layer) after 16 attempts.
* Successful frames are delivered to the addressed port (or every other port
  for broadcasts) one propagation delay after the transmission ends.

The bus reuses the 802.11 plumbing everywhere it can: frames carry the same
:class:`~repro.net.headers.MacHeader`, ports drain the same
:class:`~repro.mac.queue.DropTailQueue`, and the routing layer observes the
port through the same :class:`~repro.net.interfaces.MacListener` callbacks,
so :class:`~repro.routing.static.StaticRouting` and
:class:`~repro.routing.aodv.AodvRouting` run over a wired port unchanged.

Instrumentation lands under ``link.wired.*``: per-port counters
(``link.wired.node<N>.frames_sent`` …) via :class:`WiredStats` and per-bus
collision/utilization figures (``link.wired.bus<K>.collisions`` …).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.engine import Simulator
from repro.core.errors import ConfigurationError
from repro.core.tracing import NULL_TRACER, Tracer
from repro.mac.queue import DropTailQueue
from repro.metrics import MetricsRegistry, NULL_METRICS, instrument_property
from repro.net.headers import BROADCAST
from repro.net.interfaces import MacListener
from repro.net.packet import Packet


class WiredStats:
    """Counters maintained by each wired port.

    Args:
        registry: Metrics registry the counters are registered in; stand-alone
            instances (no registry) get live but unregistered counters.
        prefix: Hierarchical name prefix, e.g. ``"link.wired.node3"``.
    """

    _COUNTERS = (
        "frames_sent",
        "bytes_sent",
        "frames_received",
        "collisions",
        "backoffs",
        "frames_dropped_excess_collisions",
        "broadcasts_sent",
    )

    def __init__(self, registry: MetricsRegistry = NULL_METRICS,
                 prefix: str = "link.wired") -> None:
        for field in self._COUNTERS:
            unit = "bytes" if field == "bytes_sent" else "frames"
            setattr(self, f"_{field}",
                    registry.counter(f"{prefix}.{field}", unit=unit))

    frames_sent = instrument_property(
        "_frames_sent", "Frames transmitted without a collision.")
    bytes_sent = instrument_property(
        "_bytes_sent", "Payload bytes of successfully transmitted frames.")
    frames_received = instrument_property(
        "_frames_received", "Frames received and passed up to the listener.")
    collisions = instrument_property(
        "_collisions", "Transmission attempts that ended in a collision.")
    backoffs = instrument_property(
        "_backoffs", "Binary-exponential backoff rounds entered.")
    frames_dropped_excess_collisions = instrument_property(
        "_frames_dropped_excess_collisions",
        "Frames dropped after exhausting the 16-attempt limit.")
    broadcasts_sent = instrument_property(
        "_broadcasts_sent", "Broadcast frames put on the bus.")


class _Transmission:
    """One frame in flight on the bus."""

    __slots__ = ("sender", "packet", "start", "end", "corrupted")

    def __init__(self, sender: "WiredPort", packet: Packet,
                 start: float, end: float) -> None:
        self.sender = sender
        self.packet = packet
        self.start = start
        self.end = end
        self.corrupted = False


class WiredBus:
    """One shared half-duplex wired segment.

    Args:
        sim: The simulation engine.
        rate_mbps: Transmission rate in Mb/s.
        propagation_delay: One-way propagation delay in seconds.
        bus_id: Index used in metric names (``link.wired.bus<K>.*``).
        tracer: Scenario tracer for collision/drop events.
        metrics: Metrics registry for the bus-level counters.
    """

    def __init__(self, sim: Simulator, rate_mbps: float = 10.0,
                 propagation_delay: float = 5e-6, bus_id: int = 0,
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS) -> None:
        if rate_mbps <= 0:
            raise ConfigurationError("wired bus rate must be positive")
        if propagation_delay < 0:
            raise ConfigurationError(
                "wired bus propagation delay must be non-negative")
        self.sim = sim
        self.rate_mbps = rate_mbps
        self.propagation_delay = propagation_delay
        self.bus_id = bus_id
        self.tracer = tracer
        self._ports: Dict[int, "WiredPort"] = {}
        self._active: List[_Transmission] = []
        self._blocked: Set[FrozenSet[int]] = set()
        self._busy_seconds = 0.0
        prefix = f"link.wired.bus{bus_id}"
        self._collisions = metrics.counter(
            f"{prefix}.collisions", unit="events",
            description="Collision events on the bus.")
        self._frames_delivered = metrics.counter(
            f"{prefix}.frames_delivered", unit="frames",
            description="Frames successfully carried by the bus.")
        self._utilization = metrics.gauge(
            f"{prefix}.utilization", unit="fraction",
            description="Fraction of simulated time the bus carried a "
                        "successful transmission.")

    # ==================================================================
    # Attachment and introspection
    # ==================================================================
    def register(self, port: "WiredPort") -> None:
        """Attach a port; each node id may appear once per bus."""
        if port.node_id in self._ports:
            raise ConfigurationError(
                f"node {port.node_id} already has a port on bus {self.bus_id}")
        self._ports[port.node_id] = port

    @property
    def node_ids(self) -> List[int]:
        """Attached node ids in registration order."""
        return list(self._ports)

    @property
    def busy_seconds(self) -> float:
        """Cumulative airtime of successful transmissions."""
        return self._busy_seconds

    def frame_duration(self, packet: Packet) -> float:
        """Serialization time of a frame at the bus rate."""
        return packet.size * 8 / (self.rate_mbps * 1_000_000.0)

    # ==================================================================
    # Scripted outages
    # ==================================================================
    def set_link_blocked(self, node_a: int, node_b: int, blocked: bool) -> None:
        """Block or unblock delivery between two attached nodes.

        Mirrors :meth:`repro.phy.channel.WirelessChannel.set_link_blocked`
        so scenario timelines address wired and wireless links uniformly.
        """
        for node_id in (node_a, node_b):
            if node_id not in self._ports:
                raise ConfigurationError(f"unknown node {node_id}")
        pair = frozenset((node_a, node_b))
        if blocked:
            self._blocked.add(pair)
        else:
            self._blocked.discard(pair)

    def is_link_blocked(self, node_a: int, node_b: int) -> bool:
        """True when delivery between the two nodes is blocked."""
        return frozenset((node_a, node_b)) in self._blocked

    # ==================================================================
    # Medium access
    # ==================================================================
    def carrier_sensed(self, port: "WiredPort") -> bool:
        """True when another port's transmission is audible at ``port``.

        A transmission is audible from ``start + propagation_delay`` until
        ``end + propagation_delay``; inside the vulnerability window the
        carrier is *not* sensed yet, which is exactly how collisions happen.
        """
        now = self.sim.now
        for transmission in self._active:
            if transmission.sender is port:
                continue
            if transmission.start + self.propagation_delay <= now:
                return True
        return False

    def transmit(self, port: "WiredPort", packet: Packet) -> None:
        """Put a frame on the wire on behalf of ``port``.

        The caller has already carrier-sensed; any transmission still in
        progress at this point is therefore inside the vulnerability window
        and both frames are corrupted.
        """
        now = self.sim.now
        transmission = _Transmission(port, packet, now,
                                     now + self.frame_duration(packet))
        colliding = [t for t in self._active if t.end > now]
        if colliding:
            transmission.corrupted = True
            for other in colliding:
                other.corrupted = True
            self._collisions.inc()
            self.tracer.record(now, "link", "collision", node=port.node_id,
                               bus=self.bus_id, uid=packet.uid)
        self._active.append(transmission)
        self.sim.schedule(transmission.end - now, self._finish, transmission)

    def _finish(self, transmission: _Transmission) -> None:
        success = not transmission.corrupted
        if success:
            self._busy_seconds += transmission.end - transmission.start
        transmission.sender.on_transmit_end(success)
        # The frame (or its corrupted remains) stays audible for one more
        # propagation delay; waiting ports are released only after that.
        self.sim.schedule(self.propagation_delay, self._retire,
                          transmission, success)

    def _retire(self, transmission: _Transmission, deliver: bool) -> None:
        self._active.remove(transmission)
        if deliver:
            self._deliver(transmission)
        if not self._active:
            # Registration order keeps the release sequence deterministic.
            for port in list(self._ports.values()):
                port.on_bus_idle()

    def _deliver(self, transmission: _Transmission) -> None:
        packet = transmission.packet
        mac = packet.require_mac()
        sender_id = transmission.sender.node_id
        delivered = False
        for node_id, port in self._ports.items():
            if port is transmission.sender:
                continue
            if frozenset((sender_id, node_id)) in self._blocked:
                continue
            if mac.dst == node_id or mac.dst == BROADCAST:
                port.on_frame_received(packet.copy())
                delivered = True
        if delivered:
            self._frames_delivered.inc()

    # ==================================================================
    # Harvest helpers
    # ==================================================================
    def finalize_utilization(self, now: float) -> float:
        """Set and return the bus utilization gauge at harvest time."""
        utilization = self._busy_seconds / now if now > 0 else 0.0
        self._utilization.set(utilization)
        return utilization


class WiredPort:
    """One node's attachment to a :class:`WiredBus`.

    Drains a :class:`~repro.mac.queue.DropTailQueue` of MAC-framed packets
    onto the bus with CSMA/CD medium access and reports outcomes to a
    :class:`~repro.net.interfaces.MacListener`, mirroring the 802.11 MAC's
    contract so routing protocols run over either link layer unchanged.

    Args:
        sim: The simulation engine.
        node_id: Owning node's id (also the port's MAC-level address).
        bus: The bus this port attaches to.
        queue: Outbound frame queue (the port takes over ``on_enqueue``).
        rng: Random stream for backoff slot draws (``wired.<node>``).
        tracer: Scenario tracer.
        metrics: Metrics registry for the per-port counters.
    """

    #: Attempts before a frame is dropped (16, as in classic Ethernet).
    MAX_ATTEMPTS = 16
    #: Backoff window stops growing after this many collisions.
    BACKOFF_LIMIT = 10
    #: Slot time and interframe gap in bit times at the bus rate.
    SLOT_BITS = 512
    IFG_BITS = 96

    def __init__(self, sim: Simulator, node_id: int, bus: WiredBus,
                 queue: DropTailQueue, rng,
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS) -> None:
        self.sim = sim
        self.node_id = node_id
        self.bus = bus
        self.queue = queue
        self.rng = rng
        self.tracer = tracer
        self.stats = WiredStats(metrics, prefix=f"link.wired.node{node_id}")
        self.listener: Optional[MacListener] = None
        self._current: Optional[Packet] = None
        self._attempts = 0
        self._transmitting = False
        self._deferring = False
        self._in_backoff = False
        bit_time = 1.0 / (bus.rate_mbps * 1_000_000.0)
        self._slot_time = self.SLOT_BITS * bit_time
        self._ifg = self.IFG_BITS * bit_time
        queue.on_enqueue = self._on_queue_activity
        bus.register(self)

    @property
    def has_work(self) -> bool:
        """True if the port is busy or has queued frames."""
        return self._current is not None or not self.queue.is_empty

    # ==================================================================
    # Transmit path
    # ==================================================================
    def _on_queue_activity(self) -> None:
        if self._current is None:
            self._dequeue_next()

    def _dequeue_next(self) -> None:
        if self._current is not None:
            return
        packet = self.queue.dequeue()
        if packet is None:
            return
        self._current = packet
        self._attempts = 0
        self._try_send()

    def _try_send(self) -> None:
        if self.bus.carrier_sensed(self):
            self._deferring = True
            return
        self._deferring = False
        self._transmitting = True
        self.bus.transmit(self, self._current)

    def on_bus_idle(self) -> None:
        """Bus went idle; release a deferring frame (called by the bus)."""
        if (self._deferring and self._current is not None
                and not self._transmitting and not self._in_backoff):
            self._try_send()

    def on_transmit_end(self, success: bool) -> None:
        """Own transmission finished (called by the bus)."""
        self._transmitting = False
        if success:
            self._finish_current(success=True)
        else:
            self.stats._collisions.value += 1
            self._attempts += 1
            if self._attempts >= self.MAX_ATTEMPTS:
                self.stats._frames_dropped_excess_collisions.value += 1
                self.tracer.record(self.sim.now, "link", "excess_collisions",
                                   node=self.node_id,
                                   uid=self._current.uid)
                self._finish_current(success=False)
            else:
                self.stats._backoffs.value += 1
                slots = self.rng.randint(
                    0, 2 ** min(self._attempts, self.BACKOFF_LIMIT) - 1)
                self._in_backoff = True
                self.sim.schedule(self._ifg + slots * self._slot_time,
                                  self._backoff_done)

    def _backoff_done(self) -> None:
        self._in_backoff = False
        self._try_send()

    def _finish_current(self, success: bool) -> None:
        packet = self._current
        next_hop = packet.require_mac().dst
        self._current = None
        self._attempts = 0
        if success:
            if next_hop == BROADCAST:
                self.stats._broadcasts_sent.value += 1
            self.stats._frames_sent.value += 1
            self.stats._bytes_sent.value += packet.size
        if self.listener is not None:
            delivered = packet.copy()
            delivered.mac = None
            if success:
                self.listener.on_mac_send_success(delivered, next_hop)
            else:
                self.listener.on_mac_send_failure(delivered, next_hop)
        self.sim.schedule(self._ifg, self._dequeue_next)

    # ==================================================================
    # Receive path
    # ==================================================================
    def on_frame_received(self, packet: Packet) -> None:
        """Frame addressed to this port arrived (called by the bus)."""
        self.stats._frames_received.value += 1
        if self.listener is not None:
            self.listener.on_mac_delivery(packet)
