"""Named link-layer registry.

Mirrors :mod:`repro.transport.registry`, :mod:`repro.topology.registry`,
:mod:`repro.mobility.registry` and the kernel/executor backend registries for
the link layer: every profile registers a *plan builder* under a short name,
so a scenario selects its link layer declaratively
(``ScenarioConfig(link_layer="wired")``), the Study API sweeps it like any
other config axis (``axes={"link_layer": ["wireless", "wired"]}``) and the
runner CLI exposes it as ``--link-layer`` / ``--list-link-layers``.

Two profiles ship built in:

``wireless``
    Every node gets an 802.11 MAC on the shared
    :class:`~repro.phy.channel.WirelessChannel` — the historical behaviour
    and the default (existing scenarios are bit-identical under it).

``wired``
    Every node gets a port on one shared Ethernet-style CSMA/CD bus
    (:class:`~repro.link.wired.WiredBus`), rate and propagation delay taken
    from ``ScenarioConfig.wired_rate_mbps`` / ``wired_propagation_delay``.

Topologies that carry their own :class:`~repro.link.plan.LinkPlan`
(``topology.link_plan``, e.g. the ``backbone`` family's wired spine of
gateways) override the profile — the plan describes a heterogeneous layout
no single profile name could.

Registering a custom profile::

    from repro.link.registry import LinkLayerProfile, register_link_layer

    register_link_layer(LinkLayerProfile(
        name="dual-bus",
        build_plan=my_plan_builder,       # (topology, config) -> LinkPlan
        description="two bridged buses",
    ))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.core.registry import NamedRegistry
from repro.link.plan import LinkPlan, all_wireless_plan, single_bus_plan


@dataclass(frozen=True)
class LinkLayerProfile:
    """One registered link-layer family.

    Attributes:
        name: Canonical registry key (``"wireless"``, ``"wired"``).
        build_plan: Callable ``(topology, config) -> LinkPlan`` partitioning
            the topology's nodes over the link layers.
        description: One-line human description (``--list-link-layers``).
    """

    name: str
    build_plan: Callable[[object, object], LinkPlan]
    description: str = ""


_LINK_LAYERS = NamedRegistry(
    "link layer",
    suggestion_listing="python -m repro.experiments.runner --list-link-layers",
)


def registry_generation() -> int:
    """Monotone counter bumped on every (un)registration."""
    return _LINK_LAYERS.generation


def register_link_layer(profile: LinkLayerProfile,
                        replace: bool = False) -> LinkLayerProfile:
    """Register a link-layer profile by name.

    Args:
        profile: The profile to register.
        replace: Allow overwriting an existing registration with the same name.

    Returns:
        The registered profile (for decorator-style use).

    Raises:
        ConfigurationError: On a duplicate name without ``replace``.
    """
    _LINK_LAYERS.register(profile, name=profile.name, replace=replace)
    return profile


def unregister_link_layer(name: str) -> None:
    """Remove a profile (mainly for tests); unknown names are ignored."""
    _LINK_LAYERS.unregister(name)


def get_link_layer(name: str) -> LinkLayerProfile:
    """Resolve a link-layer profile by name.

    Raises:
        ConfigurationError: If the name is unknown; the message carries
            difflib close-match suggestions and the ``--list-link-layers``
            pointer.
    """
    return _LINK_LAYERS.get(name)


def link_layer_names() -> List[str]:
    """Sorted canonical names of all registered link layers."""
    return _LINK_LAYERS.names()


def link_layer_profiles() -> List[LinkLayerProfile]:
    """All registered link-layer profiles, sorted by name."""
    return _LINK_LAYERS.values()


# ======================================================================
# Built-in registrations.
# ======================================================================
def _wireless_plan(topology, config) -> LinkPlan:
    return all_wireless_plan(topology.node_ids)


def _wired_plan(topology, config) -> LinkPlan:
    return single_bus_plan(topology.node_ids,
                           rate_mbps=config.wired_rate_mbps,
                           propagation_delay=config.wired_propagation_delay)


register_link_layer(LinkLayerProfile(
    name="wireless",
    build_plan=_wireless_plan,
    description="802.11 MAC on the shared radio channel for every node "
                "(default)",
))

register_link_layer(LinkLayerProfile(
    name="wired",
    build_plan=_wired_plan,
    description="one shared Ethernet-style CSMA/CD bus carrying every node",
))
