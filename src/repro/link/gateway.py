"""Gateway nodes and wired-only nodes.

A *gateway* owns one interface per attached link layer — the usual 802.11
radio/MAC stack on the wireless side plus a :class:`~repro.link.wired.WiredPort`
on a shared bus — and forwards packets between them.  Addressing is the static
netmask split described by the scenario's :class:`~repro.link.plan.LinkPlan`:
destinations reachable over the wired port are looked up in a
directly-connected/next-gateway table built from the plan, everything else
goes through the normal wireless routing (static tables or AODV within the
gateway's own subnet).

The wired port's ingress deliberately does **not** feed the wireless routing
protocol's ``on_mac_delivery``: AODV learns a one-hop *wireless* neighbour
route from every frame it hears, and a wired peer is not a wireless
neighbour.  A small :class:`_WiredIngress` adapter keeps the planes separate
and hands wired arrivals to the gateway's forwarding logic directly.

:class:`WiredNode` covers the degenerate case of a node with *only* a wired
port (the ``wired`` link-layer profile, and pure-bus unit tests): it reuses
:class:`~repro.net.node.Node`'s transport/agent plumbing with the radio and
802.11 MAC replaced by a bus port.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from repro.core.engine import Simulator
from repro.core.errors import ConfigurationError
from repro.core.tracing import NULL_TRACER, Tracer
from repro.link.wired import WiredBus, WiredPort
from repro.mac.frames import attach_data_header
from repro.mac.queue import DropTailQueue
from repro.metrics import MetricsRegistry, NULL_METRICS
from repro.net.headers import BROADCAST
from repro.net.interfaces import MacListener
from repro.net.node import Node
from repro.net.packet import Packet
from repro.phy.propagation import Position
from repro.routing.aodv import AodvConfig, AodvRouting
from repro.routing.static import StaticRouting


class _WiredIngress(MacListener):
    """MacListener adapter a gateway's wired port reports into.

    Keeps the wired plane out of the wireless routing protocol's listener
    callbacks (AODV must not learn wired peers as wireless neighbours).
    """

    def __init__(self, gateway: "GatewayForwardingMixin") -> None:
        self._gateway = gateway

    def on_mac_delivery(self, packet: Packet) -> None:
        self._gateway.on_wired_delivery(packet)

    def on_mac_send_failure(self, packet: Packet, next_hop: int) -> None:
        self._gateway.on_wired_send_failure(packet, next_hop)

    def on_mac_send_success(self, packet: Packet, next_hop: int) -> None:
        pass


class GatewayForwardingMixin:
    """Wired dispatch shared by the static and AODV gateway routings.

    Mixed into a concrete :class:`~repro.routing.base.RoutingProtocol`; uses
    its ``stats``, ``tracer``, ``deliver_local`` and ``_deliver_or_forward``.
    """

    def _init_gateway(self, wired_queue: DropTailQueue,
                      wired_next_hops: Mapping[int, int],
                      wireless_subnet: Iterable[int],
                      metrics: MetricsRegistry = NULL_METRICS) -> None:
        self._wired_queue = wired_queue
        self._wired_next_hops = dict(wired_next_hops)
        self._wireless_subnet = frozenset(wireless_subnet)
        self.wired_listener: MacListener = _WiredIngress(self)
        self._unknown_subnet_drops = metrics.counter(
            f"route.node{self.node_id}.unknown_subnet_drops", unit="packets",
            description="Packets dropped at a gateway because no subnet "
                        "(wireless or wired) claims the destination.")

    @property
    def unknown_subnet_drops(self) -> int:
        """Packets dropped for a destination no attached plane claims."""
        return self._unknown_subnet_drops.value

    @property
    def wired_next_hops(self) -> Mapping[int, int]:
        """Wired forwarding table (destination -> next hop on the bus)."""
        return dict(self._wired_next_hops)

    def _wired_hop_for(self, destination: int) -> Optional[int]:
        return self._wired_next_hops.get(destination)

    def _enqueue_to_wired(self, packet: Packet, next_hop: int) -> bool:
        """Frame a packet for the wired port and enqueue it."""
        attach_data_header(packet, src=self.node_id, dst=next_hop, nav=0.0,
                           retry=False)
        accepted = self._wired_queue.enqueue(packet)
        if not accepted:
            self.stats._packets_dropped_queue_full.value += 1
            self.tracer.record(self.sim.now, "route", "queue_drop",
                               node=self.node_id, uid=packet.uid)
        return accepted

    def _drop_unknown_subnet(self, packet: Packet) -> None:
        ip = packet.require_ip()
        self._unknown_subnet_drops.inc()
        self.stats._packets_dropped_no_route.value += 1
        self.tracer.record(self.sim.now, "route", "unknown_subnet",
                           node=self.node_id, dst=ip.dst, uid=packet.uid)

    # ------------------------------------------------------------------
    # Wired plane (called through the _WiredIngress adapter)
    # ------------------------------------------------------------------
    def on_wired_delivery(self, packet: Packet) -> None:
        """Packet handed up by the wired port."""
        ip = packet.require_ip()
        if ip.dst != self.node_id and ip.dst != BROADCAST:
            ip.ttl -= 1
            if ip.ttl <= 0:
                self.stats._packets_dropped_no_route.value += 1
                return
        self._deliver_or_forward(packet)

    def on_wired_send_failure(self, packet: Packet, next_hop: int) -> None:
        """Wired ports have no repair: count the loss and drop the packet."""
        self.stats._link_failures.value += 1
        self.stats._packets_dropped_link_failure.value += 1
        self.tracer.record(self.sim.now, "route", "link_failure",
                           node=self.node_id, next_hop=next_hop,
                           uid=packet.uid)


class GatewayStaticRouting(GatewayForwardingMixin, StaticRouting):
    """Static routing with a second, wired forwarding table.

    Wired destinations win: a destination present in ``wired_next_hops`` is
    framed for the bus; otherwise the wireless table applies; a destination
    in neither is an unknown-subnet drop (counted separately from plain
    no-route drops).
    """

    def __init__(self, sim: Simulator, node_id: int, queue: DropTailQueue,
                 deliver_local: Callable[[Packet], None],
                 next_hops: Mapping[int, int],
                 wired_queue: DropTailQueue,
                 wired_next_hops: Mapping[int, int],
                 wireless_subnet: Iterable[int],
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS) -> None:
        StaticRouting.__init__(self, sim, node_id, queue, deliver_local,
                               next_hops, tracer, metrics)
        self._init_gateway(wired_queue, wired_next_hops, wireless_subnet,
                           metrics)

    def _route(self, packet: Packet) -> None:
        ip = packet.require_ip()
        if ip.dst == BROADCAST:
            self._broadcast_to_mac(packet)
            return
        wired_hop = self._wired_hop_for(ip.dst)
        if wired_hop is not None:
            self._enqueue_to_wired(packet, wired_hop)
            return
        next_hop = self._next_hops.get(ip.dst)
        if next_hop is None:
            self._drop_unknown_subnet(packet)
            return
        self._enqueue_to_mac(packet, next_hop)


class GatewayAodvRouting(GatewayForwardingMixin, AodvRouting):
    """AODV on the wireless side, static next-gateway table on the wired side.

    Data for a wired-reachable destination bypasses discovery entirely;
    data for a destination outside both the gateway's own wireless subnet
    and the wired table is dropped (AODV flooding must not leak across the
    wired spine).  Everything else — discovery, repair, RERR — is stock
    AODV confined to the gateway's subnet.
    """

    def __init__(self, sim: Simulator, node_id: int, queue: DropTailQueue,
                 deliver_local: Callable[[Packet], None], rng,
                 wired_queue: DropTailQueue,
                 wired_next_hops: Mapping[int, int],
                 wireless_subnet: Iterable[int],
                 config: Optional[AodvConfig] = None,
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS) -> None:
        AodvRouting.__init__(self, sim, node_id, queue, deliver_local, rng,
                             config=config, tracer=tracer, metrics=metrics)
        self._init_gateway(wired_queue, wired_next_hops, wireless_subnet,
                           metrics)

    def _route_data(self, packet: Packet, originated: bool) -> None:
        ip = packet.require_ip()
        if ip.dst != BROADCAST:
            wired_hop = self._wired_hop_for(ip.dst)
            if wired_hop is not None:
                self._enqueue_to_wired(packet, wired_hop)
                return
            if ip.dst != self.node_id and ip.dst not in self._wireless_subnet:
                self._drop_unknown_subnet(packet)
                return
        super()._route_data(packet, originated)


class WiredNode(Node):
    """A node whose only interface is a port on a wired bus.

    Reuses :class:`~repro.net.node.Node`'s transport/agent plumbing
    (``register_agent``, ``deliver_local``, ``send_from_transport``) with the
    radio and 802.11 MAC replaced by a :class:`~repro.link.wired.WiredPort`;
    ``radio`` is ``None`` and energy accounting does not apply.
    """

    def __init__(self, sim: Simulator, node_id: int, position: Position,
                 bus: WiredBus, randomness, routing: str = "static",
                 queue_capacity: int = DropTailQueue.DEFAULT_CAPACITY,
                 aodv_config: Optional[AodvConfig] = None,
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS) -> None:
        # Deliberately no Node.__init__: that would build a radio and an
        # 802.11 MAC on the wireless channel this node does not have.
        self.sim = sim
        self.node_id = node_id
        self.position = position
        self.tracer = tracer
        self.metrics = metrics
        self.radio = None
        self.queue = DropTailQueue(capacity=queue_capacity)
        self.port = WiredPort(sim, node_id, bus, self.queue,
                              rng=randomness.stream(f"wired.{node_id}"),
                              tracer=tracer, metrics=metrics)
        self.mac = self.port
        self.routing = self._build_routing(routing, randomness, aodv_config)
        self.port.listener = self.routing
        self._agents = {}
        self.devices = [self.port]


def make_gateway(node: Node, bus: WiredBus, randomness, *,
                 wired_next_hops: Mapping[int, int],
                 wireless_subnet: Iterable[int],
                 routing: str = "static",
                 wired_queue_capacity: int = DropTailQueue.DEFAULT_CAPACITY,
                 aodv_config: Optional[AodvConfig] = None):
    """Turn a regular wireless node into a gateway on ``bus``.

    Attaches a wired port (with its own outbound queue), replaces the node's
    routing protocol with the matching gateway variant, and rewires both
    interfaces' listeners.  Returns the new routing protocol.

    Args:
        node: A fully built wireless :class:`~repro.net.node.Node`.
        bus: The wired bus the gateway joins.
        randomness: The scenario's random manager (streams are drawn by
            name, so re-drawing ``aodv.<id>`` here yields the same stream
            the node's original AODV instance used).
        wired_next_hops: Destination -> next hop over the wired port.
        wireless_subnet: Node ids of the gateway's own wireless subnet.
        routing: ``"static"`` or ``"aodv"`` — must match the node's kind.
        wired_queue_capacity: Capacity of the wired port's outbound queue.
        aodv_config: AODV parameters (``routing="aodv"`` only).
    """
    wired_queue = DropTailQueue(capacity=wired_queue_capacity)
    port = WiredPort(node.sim, node.node_id, bus, wired_queue,
                     rng=randomness.stream(f"wired.{node.node_id}"),
                     tracer=node.tracer, metrics=node.metrics)
    if routing == "aodv":
        gateway = GatewayAodvRouting(
            node.sim, node.node_id, node.queue, node.deliver_local,
            rng=randomness.stream(f"aodv.{node.node_id}"),
            wired_queue=wired_queue, wired_next_hops=wired_next_hops,
            wireless_subnet=wireless_subnet, config=aodv_config,
            tracer=node.tracer, metrics=node.metrics)
    elif routing == "static":
        gateway = GatewayStaticRouting(
            node.sim, node.node_id, node.queue, node.deliver_local,
            next_hops={}, wired_queue=wired_queue,
            wired_next_hops=wired_next_hops,
            wireless_subnet=wireless_subnet,
            tracer=node.tracer, metrics=node.metrics)
    else:
        raise ConfigurationError(
            f"unknown routing protocol {routing!r} for gateway "
            f"{node.node_id}; expected 'aodv' or 'static'")
    node.routing = gateway
    node.mac.listener = gateway
    port.listener = gateway.wired_listener
    node.wired_port = port
    node.add_device(port)
    return gateway
