"""Link plans: which nodes sit on which link layer.

A :class:`LinkPlan` is the bridge between a topology and the scenario runner's
node construction.  It partitions the topology's nodes into the wireless plane
(802.11 MAC + shared :class:`~repro.phy.channel.WirelessChannel`) and zero or
more wired shared-bus segments (:class:`~repro.link.wired.WiredBus`), and
names the *gateway* nodes that own one interface on each side and forward
between them.

Plans come from two places:

* A :class:`~repro.link.registry.LinkLayerProfile` builds one from a plain
  topology — the ``wireless`` profile puts every node on the radio plane
  (the historical behaviour), the ``wired`` profile puts every node on a
  single Ethernet-style bus.
* A topology can carry its own plan (``topology.link_plan``), which then
  takes precedence — :func:`repro.topology.backbone.backbone_topology` uses
  this to describe its wired spine of gateways.

Addressing is a static netmask split: :attr:`LinkPlan.subnet_of` assigns each
wireless node (gateways included) to a numbered subnet, and
:attr:`LinkPlan.gateway_of_subnet` names the gateway that fronts each subnet
on the wired side.  Gateways forward off-subnet packets over their wired
port; wired segments use directly-connected routes between their members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class WiredSegmentSpec:
    """One shared-bus Ethernet-style segment.

    Attributes:
        nodes: Node ids attached to the bus (each gets one port).
        rate_mbps: Transmission rate of the bus in Mb/s.
        propagation_delay: One-way propagation delay across the bus in
            seconds (also the collision vulnerability window).
    """

    nodes: Tuple[int, ...]
    rate_mbps: float = 10.0
    propagation_delay: float = 5e-6

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ConfigurationError(
                "a wired segment needs at least two attached nodes")
        if len(set(self.nodes)) != len(self.nodes):
            raise ConfigurationError(
                f"duplicate node ids on wired segment: {self.nodes}")
        if self.rate_mbps <= 0:
            raise ConfigurationError("wired segment rate must be positive")
        if self.propagation_delay < 0:
            raise ConfigurationError(
                "wired segment propagation delay must be non-negative")


@dataclass(frozen=True)
class LinkPlan:
    """Partition of a topology's nodes over the available link layers.

    Attributes:
        wireless_nodes: Nodes with an 802.11 radio on the shared channel.
        segments: Wired shared-bus segments.
        gateways: Nodes owning both a radio and a wired port; must appear in
            ``wireless_nodes`` and on exactly one segment.
        subnet_of: Wireless subnet id per wireless node (gateways belong to
            the subnet they serve).  Empty for single-subnet plans.
        gateway_of_subnet: Gateway node fronting each subnet on the wired
            side.  Empty for single-subnet plans.
    """

    wireless_nodes: Tuple[int, ...] = ()
    segments: Tuple[WiredSegmentSpec, ...] = ()
    gateways: Tuple[int, ...] = ()
    subnet_of: Mapping[int, int] = field(default_factory=dict)
    gateway_of_subnet: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        wireless = set(self.wireless_nodes)
        seen_wired: Dict[int, int] = {}
        for index, segment in enumerate(self.segments):
            for node_id in segment.nodes:
                if node_id in seen_wired:
                    raise ConfigurationError(
                        f"node {node_id} appears on more than one wired segment")
                seen_wired[node_id] = index
        for gateway in self.gateways:
            if gateway not in wireless:
                raise ConfigurationError(
                    f"gateway {gateway} has no wireless interface")
            if gateway not in seen_wired:
                raise ConfigurationError(
                    f"gateway {gateway} is not attached to any wired segment")
        for node_id in seen_wired:
            if node_id in wireless and node_id not in set(self.gateways):
                raise ConfigurationError(
                    f"node {node_id} is on both planes but not a gateway")

    @property
    def is_pure_wireless(self) -> bool:
        """True when the plan has no wired segments (the historical path)."""
        return not self.segments

    @property
    def wired_only_nodes(self) -> FrozenSet[int]:
        """Nodes with a wired port and no radio."""
        wireless = set(self.wireless_nodes)
        return frozenset(node_id for segment in self.segments
                         for node_id in segment.nodes
                         if node_id not in wireless)

    def segment_of(self, node_id: int) -> int:
        """Index of the segment a node is attached to.

        Raises:
            ConfigurationError: If the node is on no wired segment.
        """
        for index, segment in enumerate(self.segments):
            if node_id in segment.nodes:
                return index
        raise ConfigurationError(
            f"node {node_id} is not attached to any wired segment")

    def subnet_members(self, subnet: int) -> FrozenSet[int]:
        """All wireless nodes assigned to a subnet (gateway included)."""
        return frozenset(node_id for node_id, owner in self.subnet_of.items()
                         if owner == subnet)


def all_wireless_plan(node_ids) -> LinkPlan:
    """Plan putting every node on the 802.11 channel (default behaviour)."""
    return LinkPlan(wireless_nodes=tuple(sorted(node_ids)))


def single_bus_plan(node_ids, rate_mbps: float = 10.0,
                    propagation_delay: float = 5e-6) -> LinkPlan:
    """Plan putting every node on one shared Ethernet-style bus."""
    return LinkPlan(segments=(WiredSegmentSpec(
        nodes=tuple(sorted(node_ids)), rate_mbps=rate_mbps,
        propagation_delay=propagation_delay),))
