"""Pluggable link layers: the 802.11 wireless plane, wired shared-bus
segments, and the gateway nodes that bridge between them."""

from repro.link.gateway import (
    GatewayAodvRouting,
    GatewayStaticRouting,
    WiredNode,
    make_gateway,
)
from repro.link.plan import (
    LinkPlan,
    WiredSegmentSpec,
    all_wireless_plan,
    single_bus_plan,
)
from repro.link.registry import (
    LinkLayerProfile,
    get_link_layer,
    link_layer_names,
    link_layer_profiles,
    register_link_layer,
    unregister_link_layer,
)
from repro.link.wired import WiredBus, WiredPort, WiredStats

__all__ = [
    "GatewayAodvRouting",
    "GatewayStaticRouting",
    "LinkLayerProfile",
    "LinkPlan",
    "WiredBus",
    "WiredNode",
    "WiredPort",
    "WiredSegmentSpec",
    "WiredStats",
    "all_wireless_plan",
    "get_link_layer",
    "link_layer_names",
    "link_layer_profiles",
    "make_gateway",
    "register_link_layer",
    "single_bus_plan",
    "unregister_link_layer",
]
