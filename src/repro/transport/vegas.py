"""TCP Vegas congestion control.

Vegas (Brakmo & Peterson, 1995) anticipates congestion instead of reacting to
loss.  Once per round-trip time the sender compares the throughput it *expects*
(window / baseRTT) with the throughput it *achieves* (window / RTT); the
difference, expressed in packets,

    diff = cwnd * (RTT - baseRTT) / RTT,

is held between the thresholds α and β by adding or removing one segment per
RTT.  The paper sets α = β = 2 (and γ = α for leaving slow start), which it
shows is the best choice for multihop 802.11 chains — the resulting window of
roughly 3–5 segments sits near the known optimum of h/4 packets in flight and
thereby avoids most hidden-terminal losses.

Also implemented, following Brakmo's design:

* the conservative slow start that doubles the window only every other RTT and
  exits as soon as ``diff > γ``;
* the fine-grained retransmission check: a duplicate ACK triggers an immediate
  retransmission when the oldest outstanding segment is older than the
  fine-grained timeout, without waiting for the third duplicate;
* the same check on the first new ACKs after a retransmission, to recover from
  multiple losses in one window;
* the gentler window reductions (3/4 on a fast retransmit instead of 1/2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.packet import Packet
from repro.transport.tcp_base import TcpSender


@dataclass(frozen=True)
class VegasParameters:
    """Vegas-specific thresholds (in packets).

    Attributes:
        alpha: Lower threshold on ``diff``; below it the window grows.
        beta: Upper threshold on ``diff``; above it the window shrinks.
            The paper sets β = α, which improves fairness.
        gamma: Threshold on ``diff`` for leaving slow start.
    """

    alpha: float = 2.0
    beta: float = 2.0
    gamma: float = 2.0


class VegasSender(TcpSender):
    """TCP Vegas sender.

    Args:
        parameters: Vegas α/β/γ thresholds; the paper's default is
            α = β = γ = 2.
        **kwargs: Forwarded to :class:`repro.transport.tcp_base.TcpSender`.
    """

    def __init__(self, *args, parameters: Optional[VegasParameters] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.parameters = parameters or VegasParameters()
        self.base_rtt: Optional[float] = None
        self._epoch_end_seq = 0
        self._epoch_rtt_sum = 0.0
        self._epoch_rtt_count = 0
        self._slow_start_parity = False
        self._in_slow_start = True
        self._recovery_ack_checks = 0

    # ------------------------------------------------------------------
    # RTT bookkeeping
    # ------------------------------------------------------------------
    def _record_fine_rtt(self, packet: Packet) -> None:
        tcp = packet.require_tcp()
        if tcp.echo_timestamp <= 0:
            return
        sample = self.sim.now - tcp.echo_timestamp
        if sample <= 0:
            return
        if self.base_rtt is None or sample < self.base_rtt:
            self.base_rtt = sample
        self._epoch_rtt_sum += sample
        self._epoch_rtt_count += 1

    def _current_rtt(self) -> Optional[float]:
        if self._epoch_rtt_count > 0:
            return self._epoch_rtt_sum / self._epoch_rtt_count
        return self.rtt.last_rtt

    def expected_throughput(self) -> float:
        """Expected throughput in packets/s (cwnd / baseRTT)."""
        if self.base_rtt is None or self.base_rtt <= 0:
            return 0.0
        return self.cwnd / self.base_rtt

    def actual_throughput(self) -> float:
        """Actual throughput in packets/s (cwnd / current RTT)."""
        rtt = self._current_rtt()
        if rtt is None or rtt <= 0:
            return 0.0
        return self.cwnd / rtt

    def compute_diff(self) -> Optional[float]:
        """The Vegas ``diff`` in packets, or None before any RTT measurement."""
        rtt = self._current_rtt()
        if rtt is None or rtt <= 0 or self.base_rtt is None:
            return None
        return self.cwnd * (rtt - self.base_rtt) / rtt

    # ------------------------------------------------------------------
    # Congestion-control hooks
    # ------------------------------------------------------------------
    def on_new_ack(self, newly_acked: int, packet: Packet) -> None:
        """Per-ACK bookkeeping plus the once-per-RTT Vegas window update."""
        self._record_fine_rtt(packet)

        # After a Vegas fast retransmission, the first two new ACKs also check
        # whether the (new) oldest outstanding segment has already expired.
        if self._recovery_ack_checks > 0:
            self._recovery_ack_checks -= 1
            self._maybe_expired_retransmit()

        if self.snd_una <= self._epoch_end_seq:
            return  # still within the current RTT epoch
        self._run_rtt_epoch_update()

    def _run_rtt_epoch_update(self) -> None:
        diff = self.compute_diff()
        params = self.parameters
        if diff is not None:
            if self._in_slow_start:
                if diff > params.gamma:
                    # Incipient congestion during slow start: switch to
                    # congestion avoidance with a reduced window.
                    self._in_slow_start = False
                    self.set_cwnd(max(self.cwnd * 3.0 / 4.0, 2.0))
                else:
                    # Double only every other RTT.
                    self._slow_start_parity = not self._slow_start_parity
                    if self._slow_start_parity:
                        self.set_cwnd(self.cwnd * 2.0)
            else:
                if diff < params.alpha:
                    self.set_cwnd(self.cwnd + 1.0)
                elif diff > params.beta:
                    self.set_cwnd(self.cwnd - 1.0)
                # else: leave the window unchanged (α ≤ diff ≤ β).
        elif self._in_slow_start:
            self._slow_start_parity = not self._slow_start_parity
            if self._slow_start_parity:
                self.set_cwnd(self.cwnd * 2.0)

        # Start the next RTT epoch.
        self._epoch_end_seq = self.snd_nxt
        self._epoch_rtt_sum = 0.0
        self._epoch_rtt_count = 0

    def on_dup_ack(self, packet: Packet) -> None:
        """Vegas fine-grained retransmission check plus the 3-dupack fallback."""
        self._record_fine_rtt(packet)
        if self._maybe_expired_retransmit():
            return
        if self.dupacks >= self.config.dupack_threshold:
            self._fast_retransmit()

    def _maybe_expired_retransmit(self) -> bool:
        """Retransmit ``snd_una`` if it exceeded the fine-grained timeout."""
        if self.snd_una >= self.snd_nxt:
            return False
        age = self.segment_age(self.snd_una)
        if age is None:
            return False
        if age > self._fine_grained_timeout():
            self._fast_retransmit()
            return True
        return False

    def _fine_grained_timeout(self) -> float:
        if self.rtt.srtt is not None:
            return self.rtt.srtt + 4.0 * self.rtt.rttvar
        if self.base_rtt is not None:
            return 2.0 * self.base_rtt
        return self.rtt.timeout()

    def _fast_retransmit(self) -> None:
        self._in_slow_start = False
        self.set_cwnd(max(self.cwnd * 3.0 / 4.0, 2.0))
        self._recovery_ack_checks = 2
        self.dupacks = 0
        self.retransmit(self.snd_una)

    def on_timeout(self) -> None:
        """A coarse timeout resets Vegas to a tiny window."""
        self.ssthresh = 2.0
        self._in_slow_start = False
        self._recovery_ack_checks = 0
        self.dupacks = 0
        self.set_cwnd(2.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        """True while the sender is still in Vegas' modified slow start."""
        return self._in_slow_start
