"""TCP NewReno congestion control.

NewReno is the widely deployed loss-based variant the paper uses as its
baseline: slow start and AIMD congestion avoidance, fast retransmit after three
duplicate ACKs, and fast recovery with NewReno's partial-ACK handling (one
retransmission per partial ACK, staying in recovery until the whole outstanding
window at the time of the loss is acknowledged).

The paper additionally evaluates "NewReno with optimal window", i.e. NewReno
whose congestion window is clamped to the chain-optimal value (MaxWin = 3 for a
7-hop chain, following Fu et al.); that is exposed here as ``max_cwnd``.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.transport.tcp_base import TcpSender


class NewRenoSender(TcpSender):
    """TCP NewReno sender.

    Args:
        max_cwnd: Optional hard clamp on the congestion window in segments,
            used for the paper's "NewReno Optimal Window" variant
            (``max_cwnd=3`` for the 7-hop chain).
        **kwargs: Forwarded to :class:`repro.transport.tcp_base.TcpSender`.
    """

    def __init__(self, *args, max_cwnd: Optional[float] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_cwnd = max_cwnd
        self._in_recovery = False
        self._recover = 0

    # ------------------------------------------------------------------
    # Window helpers
    # ------------------------------------------------------------------
    def set_cwnd(self, value: float) -> None:
        """Set cwnd, additionally respecting the optional ``max_cwnd`` clamp."""
        if self.max_cwnd is not None:
            value = min(value, self.max_cwnd)
        super().set_cwnd(value)

    # ------------------------------------------------------------------
    # Congestion-control hooks
    # ------------------------------------------------------------------
    def on_new_ack(self, newly_acked: int, packet: Packet) -> None:
        """Slow start / congestion avoidance, with NewReno partial-ACK logic."""
        if self._in_recovery:
            if self.snd_una > self._recover:
                # Full ACK: leave fast recovery and deflate to ssthresh.
                self._in_recovery = False
                self.set_cwnd(self.ssthresh)
            else:
                # Partial ACK: retransmit the next presumed-lost segment and
                # deflate the window by the amount acknowledged.
                self.set_cwnd(max(self.ssthresh, self.cwnd - newly_acked + 1))
                self.retransmit(self.snd_una)
            return
        if self.cwnd < self.ssthresh:
            # Slow start grows by one segment per received ACK, which is why
            # ACK thinning directly slows NewReno's window growth.
            self.set_cwnd(self.cwnd + 1.0)
        else:
            self.set_cwnd(self.cwnd + 1.0 / max(self.cwnd, 1.0))

    def on_dup_ack(self, packet: Packet) -> None:
        """Count duplicate ACKs; trigger fast retransmit at the threshold."""
        if self._in_recovery:
            # Window inflation keeps the pipe full during recovery.
            self.set_cwnd(self.cwnd + 1.0)
            return
        if self.dupacks >= self.config.dupack_threshold:
            self._enter_fast_recovery()

    def _enter_fast_recovery(self) -> None:
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self._recover = self.snd_nxt - 1
        self._in_recovery = True
        self.set_cwnd(self.ssthresh + self.config.dupack_threshold)
        self.retransmit(self.snd_una)

    def on_timeout(self) -> None:
        """Collapse the window after a retransmission timeout."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self._in_recovery = False
        self.dupacks = 0
        self.set_cwnd(1.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_fast_recovery(self) -> bool:
        """True while the sender is in NewReno fast recovery."""
        return self._in_recovery
