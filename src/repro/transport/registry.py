"""Pluggable transport-variant registry.

The paper compares six transport variants (NewReno, Vegas, both with dynamic
ACK thinning, window-clamped NewReno and optimally paced UDP).  Instead of
hard-wiring those variants as ``if/elif`` chains inside the scenario runner,
each variant is described by a :class:`TransportProfile` — a named bundle of
factories that build the sender, the sink and the driving application for one
flow — and registered here by name.  The runner only ever talks to a profile,
so adding a new transport variant is a ~30-line registration::

    from repro.transport.registry import TransportProfile, register_transport

    register_transport(TransportProfile(
        name="vegas-a4",
        label="Vegas alpha=4",
        build_sender=lambda ctx: VegasSender(
            ctx.sim, ctx.flow, ctx.stats, config=ctx.config.tcp,
            parameters=VegasParameters(alpha=4, beta=4, gamma=4),
            tracer=ctx.tracer),
        build_sink=tcp_sink_factory,
    ))

Profiles are looked up by canonical name (``"vegas-at"``), by display label
(``"Vegas ACK Thinning"``), by any registered alias, or by a
:class:`repro.experiments.config.TransportVariant` enum member — the legacy
enum keeps working as a set of aliases for the built-in registrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Mapping, Optional, Tuple

from repro.app.cbr import CbrApplication
from repro.app.ftp import FtpApplication
from repro.core.errors import ConfigurationError
from repro.core.registry import NamedRegistry
from repro.transport.newreno import NewRenoSender
from repro.transport.sink import AckThinningSink, TcpSink
from repro.transport.udp import UdpSender, UdpSink
from repro.transport.vegas import VegasSender

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.engine import Simulator
    from repro.core.tracing import Tracer
    from repro.experiments.config import ScenarioConfig
    from repro.mac.timing import MacTiming
    from repro.net.address import FlowAddress
    from repro.transport.stats import FlowStats


@dataclass(frozen=True)
class TransportBuildContext:
    """Everything a transport factory may need to build one flow's endpoints.

    Attributes:
        sim: The scenario's simulator.
        flow: Source/destination addresses of the flow.
        stats: Per-flow statistics collector shared by sender and sink.
        config: The *flow-effective* scenario configuration: the scenario-wide
            config with this flow's
            :class:`~repro.experiments.workload.FlowSpec` overrides (variant,
            Vegas α, window clamp, UDP interval, TCP parameters, ACK
            thinning) already applied, so factories read one config and need
            not know about per-flow overrides.
        timing: MAC timing derived from the configured bandwidth.
        tracer: Scenario-wide tracer.
        data_limit: Optional data-packet budget of the flow
            (``FlowSpec.packet_limit``); TCP senders stop offering new data
            and CBR sources stop pacing once it is reached.
    """

    sim: "Simulator"
    flow: "FlowAddress"
    stats: "FlowStats"
    config: "ScenarioConfig"
    timing: "MacTiming"
    tracer: "Tracer"
    data_limit: Optional[int] = None


#: Factory building a transport agent (sender or sink) for one flow.
AgentFactory = Callable[[TransportBuildContext], object]
#: Factory building the application driving a sender; receives the context,
#: the freshly built sender and the flow's start time.
ApplicationFactory = Callable[[TransportBuildContext, object, float], object]
#: Config validator; raises :class:`ConfigurationError` on bad parameters.
ConfigValidator = Callable[["ScenarioConfig"], None]


def ftp_application(ctx: TransportBuildContext, sender: object,
                    start_time: float) -> FtpApplication:
    """Default application factory: a persistent FTP transfer."""
    return FtpApplication(ctx.sim, sender, start_time=start_time)


def paced_udp_application(ctx: TransportBuildContext, sender: object,
                          start_time: float) -> CbrApplication:
    """CBR application paced at the configured (or analytic) UDP interval."""
    # Imported lazily: repro.experiments must not be imported while
    # repro.experiments.config itself is still being initialised.
    from repro.experiments.paced_udp import default_udp_interval

    interval = ctx.config.udp_interval or default_udp_interval(
        ctx.timing, ctx.config.tcp.mss
    )
    return CbrApplication(ctx.sim, sender, interval=interval, start_time=start_time,
                          packet_limit=ctx.data_limit)


@dataclass(frozen=True)
class TransportProfile:
    """One registered transport variant.

    Attributes:
        name: Canonical registry key (short slug, e.g. ``"vegas-at"``); also
            the tag used in generated scenario preset names.
        label: Human-readable label used in result names and figure legends.
        build_sender: Factory for the sending transport agent.
        build_sink: Factory for the receiving transport agent.
        build_application: Factory for the application driving the sender
            (defaults to a persistent FTP transfer).
        validate: Optional scenario-config validator run at config time.
        preset_overrides: Extra :class:`ScenarioConfig` fields the generated
            presets (and preset-style sweeps) apply for this variant, e.g. the
            window clamp the "optimal window" variant requires.
        aliases: Additional lookup keys (case-insensitive).
    """

    name: str
    label: str
    build_sender: AgentFactory
    build_sink: AgentFactory
    build_application: ApplicationFactory = ftp_application
    validate: Optional[ConfigValidator] = None
    preset_overrides: Mapping[str, object] = field(default_factory=dict)
    aliases: Tuple[str, ...] = ()

    def validate_config(self, config: "ScenarioConfig") -> None:
        """Run the profile's config validator, if any."""
        if self.validate is not None:
            self.validate(config)


_PROFILES = NamedRegistry("transport")


def registry_generation() -> int:
    """Monotone counter bumped on every (un)registration.

    Lets derived caches (e.g. the generated scenario preset table) detect
    that the set of registered transports changed.
    """
    return _PROFILES.generation


def register_transport(profile: TransportProfile, replace: bool = False) -> TransportProfile:
    """Register a transport profile under its name, label and aliases.

    Args:
        profile: The profile to register.
        replace: Allow overwriting an existing registration with the same
            name (aliases of *other* profiles still may not be shadowed).

    Returns:
        The registered profile (for decorator-style use).

    Raises:
        ConfigurationError: On a duplicate name/alias without ``replace``.
    """
    # replace only permits overwriting the same-name profile; the shared
    # registry never lets a registration hijack another profile's name or
    # aliases, and it drops the replaced profile's stale aliases.
    _PROFILES.register(profile, name=profile.name,
                       aliases=(profile.label, *profile.aliases),
                       replace=replace)
    return profile


def unregister_transport(name: str) -> None:
    """Remove a profile (mainly for tests); unknown names are ignored."""
    _PROFILES.unregister(name)


def transport_key(variant: object) -> str:
    """Canonical registry name for a variant given in any accepted form.

    Accepts a canonical name, a label, an alias, or a ``TransportVariant``
    enum member (matched through its ``value``).

    Raises:
        ConfigurationError: If the variant is unknown.
    """
    raw = variant if isinstance(variant, str) else getattr(variant, "value", None)
    if isinstance(raw, str):
        key = _PROFILES.resolve_key(raw)
        if key is not None:
            return key
    raise ConfigurationError(
        f"unknown transport variant {variant!r}; registered: "
        f"{', '.join(transport_names())}"
    )


def get_transport(variant: object) -> TransportProfile:
    """Resolve a variant (name, label, alias or enum member) to its profile."""
    return _PROFILES.lookup(transport_key(variant))


def transport_names() -> List[str]:
    """Sorted canonical names of all registered transports."""
    return _PROFILES.names()


def transport_profiles() -> List[TransportProfile]:
    """All registered profiles, sorted by canonical name."""
    return _PROFILES.values()


# ======================================================================
# Built-in registrations: the paper's six variants plus one combined
# variant (ACK thinning + window clamp) that exists purely to show that
# new variants are registry entries, not runner changes.
# ======================================================================
def _tcp_sink(ctx: TransportBuildContext) -> TcpSink:
    return TcpSink(ctx.sim, ctx.flow, ctx.stats, mss=ctx.config.tcp.mss,
                   tracer=ctx.tracer)


def _thinning_sink(ctx: TransportBuildContext) -> AckThinningSink:
    return AckThinningSink(ctx.sim, ctx.flow, ctx.stats, mss=ctx.config.tcp.mss,
                           policy=ctx.config.ack_thinning, tracer=ctx.tracer)


def _newreno_sender(ctx: TransportBuildContext) -> NewRenoSender:
    return NewRenoSender(ctx.sim, ctx.flow, ctx.stats, config=ctx.config.tcp,
                         data_limit_packets=ctx.data_limit, tracer=ctx.tracer)


def _newreno_clamped_sender(ctx: TransportBuildContext) -> NewRenoSender:
    return NewRenoSender(ctx.sim, ctx.flow, ctx.stats, config=ctx.config.tcp,
                         max_cwnd=ctx.config.newreno_max_cwnd,
                         data_limit_packets=ctx.data_limit, tracer=ctx.tracer)


def _vegas_sender(ctx: TransportBuildContext) -> VegasSender:
    return VegasSender(ctx.sim, ctx.flow, ctx.stats, config=ctx.config.tcp,
                       parameters=ctx.config.vegas_parameters(),
                       data_limit_packets=ctx.data_limit, tracer=ctx.tracer)


def _udp_sender(ctx: TransportBuildContext) -> UdpSender:
    return UdpSender(ctx.sim, ctx.flow, ctx.stats, payload_size=ctx.config.tcp.mss,
                     tracer=ctx.tracer)


def _udp_sink(ctx: TransportBuildContext) -> UdpSink:
    return UdpSink(ctx.sim, ctx.flow, ctx.stats, tracer=ctx.tracer)


def _require_max_cwnd(config: "ScenarioConfig") -> None:
    if config.newreno_max_cwnd is None:
        raise ConfigurationError(
            f"{transport_key(config.variant)} requires newreno_max_cwnd to be set"
        )


register_transport(TransportProfile(
    name="newreno",
    label="NewReno",
    build_sender=_newreno_sender,
    build_sink=_tcp_sink,
))

register_transport(TransportProfile(
    name="vegas",
    label="Vegas",
    build_sender=_vegas_sender,
    build_sink=_tcp_sink,
))

register_transport(TransportProfile(
    name="newreno-at",
    label="NewReno ACK Thinning",
    build_sender=_newreno_sender,
    build_sink=_thinning_sink,
))

register_transport(TransportProfile(
    name="vegas-at",
    label="Vegas ACK Thinning",
    build_sender=_vegas_sender,
    build_sink=_thinning_sink,
))

register_transport(TransportProfile(
    name="newreno-optwin",
    label="NewReno Optimal Window",
    build_sender=_newreno_clamped_sender,
    build_sink=_tcp_sink,
    validate=_require_max_cwnd,
    preset_overrides={"newreno_max_cwnd": 3.0},
))

register_transport(TransportProfile(
    name="paced-udp",
    label="Paced UDP",
    build_sender=_udp_sender,
    build_sink=_udp_sink,
    build_application=paced_udp_application,
))

register_transport(TransportProfile(
    name="newreno-at-optwin",
    label="NewReno ACK Thinning Optimal Window",
    build_sender=_newreno_clamped_sender,
    build_sink=_thinning_sink,
    validate=_require_max_cwnd,
    preset_overrides={"newreno_max_cwnd": 3.0},
))
