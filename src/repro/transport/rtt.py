"""Round-trip-time estimation and retransmission timeout computation.

Implements the classic Jacobson/Karels estimator used by TCP NewReno plus the
fine-grained (timestamp-based) RTT samples that TCP Vegas relies on for its
congestion detection and early retransmission checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class RttEstimator:
    """Smoothed RTT estimator with Jacobson/Karels variance tracking.

    Attributes:
        srtt: Smoothed RTT in seconds (None until the first sample).
        rttvar: RTT variance estimate in seconds.
        min_rto: Lower bound on the retransmission timeout.
        max_rto: Upper bound on the retransmission timeout.
        initial_rto: RTO used before any RTT sample has been taken.  Multihop
            paths with on-demand routing see a very long first RTT (route
            discovery), so this is deliberately generous.
        alpha: Gain for the smoothed RTT update.
        beta: Gain for the variance update.
    """

    srtt: Optional[float] = None
    rttvar: float = 0.0
    min_rto: float = 0.2
    max_rto: float = 60.0
    initial_rto: float = 3.0
    alpha: float = 0.125
    beta: float = 0.25
    backoff: int = 1
    samples: int = 0
    min_rtt: Optional[float] = None
    last_rtt: Optional[float] = None

    def update(self, sample: float) -> None:
        """Incorporate a new RTT ``sample`` (seconds)."""
        if sample <= 0:
            return
        self.samples += 1
        self.last_rtt = sample
        if self.min_rtt is None or sample < self.min_rtt:
            self.min_rtt = sample
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            error = sample - self.srtt
            self.srtt += self.alpha * error
            self.rttvar += self.beta * (abs(error) - self.rttvar)
        self.backoff = 1

    def timeout(self) -> float:
        """Current retransmission timeout (seconds), including backoff."""
        if self.srtt is None:
            base = self.initial_rto
        else:
            base = self.srtt + 4.0 * self.rttvar
        rto = base * self.backoff
        return min(self.max_rto, max(self.min_rto, rto))

    def apply_backoff(self) -> None:
        """Double the timeout after a retransmission timeout (Karn's backoff)."""
        self.backoff = min(self.backoff * 2, 64)

    def reset_backoff(self) -> None:
        """Clear exponential backoff after an acknowledgement arrives."""
        self.backoff = 1
