"""Transport layer: TCP NewReno, TCP Vegas, ACK thinning sinks, UDP/paced UDP.

Variants are pluggable: :mod:`repro.transport.registry` maps variant names to
:class:`~repro.transport.registry.TransportProfile` factory bundles, which the
scenario runner uses to build senders, sinks and driving applications.
"""

from repro.transport.ack_thinning import AckThinningPolicy
from repro.transport.newreno import NewRenoSender
from repro.transport.registry import (
    TransportBuildContext,
    TransportProfile,
    get_transport,
    register_transport,
    transport_names,
    transport_profiles,
    unregister_transport,
)
from repro.transport.rtt import RttEstimator
from repro.transport.sink import AckThinningSink, TcpSink
from repro.transport.stats import FlowStats
from repro.transport.tcp_base import TcpConfig, TcpSender, TransportAgent
from repro.transport.udp import PacedUdpSource, UdpSender, UdpSink
from repro.transport.vegas import VegasParameters, VegasSender

__all__ = [
    "AckThinningPolicy",
    "TransportBuildContext",
    "TransportProfile",
    "get_transport",
    "register_transport",
    "transport_names",
    "transport_profiles",
    "unregister_transport",
    "NewRenoSender",
    "RttEstimator",
    "AckThinningSink",
    "TcpSink",
    "FlowStats",
    "TcpConfig",
    "TcpSender",
    "TransportAgent",
    "PacedUdpSource",
    "UdpSender",
    "UdpSink",
    "VegasParameters",
    "VegasSender",
]
