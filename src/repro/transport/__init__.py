"""Transport layer: TCP NewReno, TCP Vegas, ACK thinning sinks, UDP/paced UDP."""

from repro.transport.ack_thinning import AckThinningPolicy
from repro.transport.newreno import NewRenoSender
from repro.transport.rtt import RttEstimator
from repro.transport.sink import AckThinningSink, TcpSink
from repro.transport.stats import FlowStats
from repro.transport.tcp_base import TcpConfig, TcpSender, TransportAgent
from repro.transport.udp import PacedUdpSource, UdpSender, UdpSink
from repro.transport.vegas import VegasParameters, VegasSender

__all__ = [
    "AckThinningPolicy",
    "NewRenoSender",
    "RttEstimator",
    "AckThinningSink",
    "TcpSink",
    "FlowStats",
    "TcpConfig",
    "TcpSender",
    "TransportAgent",
    "PacedUdpSource",
    "UdpSender",
    "UdpSink",
    "VegasParameters",
    "VegasSender",
]
