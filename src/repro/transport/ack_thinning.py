"""Dynamic ACK thinning (Altman & Jiménez, PWC 2003).

The TCP sink acknowledges only every *d*-th data packet, where the thinning
degree *d* grows from 1 to 4 with the sequence numbers already received:

    d = 1  if n <= S1
    d = 2  if S1 <= n < S2
    d = 3  if S2 <= n < S3
    d = 4  if n >= S3

with the thresholds S1 = 2, S2 = 5, S3 = 9 recommended in the original paper.
A 100 ms timer bounds how long an acknowledgement can be withheld, so the
sender never stalls when fewer than *d* packets are in flight.  Thinning the
ACK stream reduces MAC-layer contention between data packets and the returning
ACKs — and, as the DSN'05 paper shows, it also slows NewReno's window growth,
which on multihop chains is most of the benefit at 2 Mbit/s.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AckThinningPolicy:
    """Parameters of the dynamic ACK-thinning scheme.

    Attributes:
        s1: First sequence-number threshold (d becomes 2 above it).
        s2: Second threshold (d becomes 3 at and above it).
        s3: Third threshold (d becomes 4 at and above it).
        max_delay: Maximum time (s) an acknowledgement may be withheld.
    """

    s1: int = 2
    s2: int = 5
    s3: int = 9
    max_delay: float = 0.100

    def degree(self, highest_seq_received: int) -> int:
        """Return the thinning degree *d* for the given highest sequence number."""
        n = highest_seq_received
        if n <= self.s1:
            return 1
        if n < self.s2:
            return 2
        if n < self.s3:
            return 3
        return 4
