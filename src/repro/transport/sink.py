"""TCP sinks: the standard ACK-every-packet sink and the ACK-thinning sink.

The sink is the receiving endpoint of a TCP flow.  It reassembles the segment
sequence, records goodput (in-order payload bytes delivered) in the shared
:class:`repro.transport.stats.FlowStats`, and generates cumulative ACKs.  The
acknowledgement policy is either immediate (one ACK per received data packet,
the ns-2 default the paper uses for plain NewReno/Vegas) or the dynamic ACK
thinning of Altman & Jiménez (see :mod:`repro.transport.ack_thinning`).
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.core.engine import Simulator, Timer
from repro.core.tracing import NULL_TRACER, Tracer
from repro.net.address import FlowAddress
from repro.net.headers import IpHeader, IpProtocol, TcpFlag, TcpHeader
from repro.net.packet import Packet
from repro.transport.ack_thinning import AckThinningPolicy
from repro.transport.stats import FlowStats
from repro.transport.tcp_base import TransportAgent


class TcpSink(TransportAgent):
    """Receiving endpoint of a TCP flow; acknowledges every data packet."""

    def __init__(
        self,
        sim: Simulator,
        flow: FlowAddress,
        flow_stats: FlowStats,
        mss: int = 1460,
        send_callback: Optional[Callable[[Packet], None]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(
            sim=sim,
            flow=flow,
            local_node=flow.dst_node,
            local_port=flow.dst_port,
            send_callback=send_callback,
            tracer=tracer,
        )
        self.stats = flow_stats
        self.mss = mss
        self.next_expected = 0
        self.highest_seq_received = -1
        self._out_of_order: Set[int] = set()

    # ------------------------------------------------------------------
    # Receiving data
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Process an arriving data segment and acknowledge it."""
        tcp = packet.require_tcp()
        seq = tcp.seq
        self.highest_seq_received = max(self.highest_seq_received, seq)
        in_order = False
        if seq == self.next_expected:
            delivered = 1
            self.next_expected += 1
            while self.next_expected in self._out_of_order:
                self._out_of_order.discard(self.next_expected)
                self.next_expected += 1
                delivered += 1
            self.stats.record_delivery(self.sim.now, delivered * self.mss, delivered)
            in_order = True
        elif seq > self.next_expected:
            self._out_of_order.add(seq)
        # seq < next_expected: duplicate of already-delivered data.
        self._acknowledge(packet, in_order=in_order)

    # ------------------------------------------------------------------
    # Acknowledgement policy (overridden by the thinning sink)
    # ------------------------------------------------------------------
    def _acknowledge(self, trigger: Packet, in_order: bool) -> None:
        self.send_ack(trigger)

    def send_ack(self, trigger: Packet) -> None:
        """Emit a cumulative ACK towards the sender."""
        tcp = trigger.require_tcp()
        header = TcpHeader(
            src_port=self.flow.dst_port,
            dst_port=self.flow.src_port,
            ack=self.next_expected,
            flags=TcpFlag.ACK,
            window=64,
            echo_timestamp=tcp.timestamp,
        )
        ack_packet = Packet(
            payload_size=0,
            flow_id=self.stats.flow_id,
            created_at=self.sim.now,
            ip=IpHeader(src=self.flow.dst_node, dst=self.flow.src_node,
                        protocol=IpProtocol.TCP),
            tcp=header,
        )
        self.stats._acks_sent.value += 1
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, "tcp", "ack", node=self.local_node,
                               ack=self.next_expected, flow=self.stats.flow_id)
        self._send_ip(ack_packet)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def delivered_packets(self) -> int:
        """Number of in-order segments delivered to the application."""
        return self.next_expected


class AckThinningSink(TcpSink):
    """TCP sink implementing dynamic ACK thinning.

    The sink acknowledges every *d*-th packet (d depends on the highest
    sequence number received, growing from 1 to 4) and otherwise withholds the
    ACK for at most ``policy.max_delay`` seconds.  Out-of-order arrivals are
    acknowledged immediately so the sender's duplicate-ACK loss detection keeps
    working.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: FlowAddress,
        flow_stats: FlowStats,
        mss: int = 1460,
        policy: Optional[AckThinningPolicy] = None,
        send_callback: Optional[Callable[[Packet], None]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(
            sim=sim,
            flow=flow,
            flow_stats=flow_stats,
            mss=mss,
            send_callback=send_callback,
            tracer=tracer,
        )
        self.policy = policy or AckThinningPolicy()
        self._unacked_packets = 0
        self._pending_trigger: Optional[Packet] = None
        self._delay_timer = Timer(sim, self._on_delay_expired)

    @property
    def current_degree(self) -> int:
        """Thinning degree *d* currently in effect."""
        return self.policy.degree(max(self.highest_seq_received, 0))

    def _acknowledge(self, trigger: Packet, in_order: bool) -> None:
        if not in_order:
            # Duplicate or out-of-order data: acknowledge immediately so the
            # sender sees duplicate ACKs and can recover the loss.
            self._flush_ack(trigger)
            return
        self._unacked_packets += 1
        self._pending_trigger = trigger
        if self._unacked_packets >= self.current_degree:
            self._flush_ack(trigger)
        elif not self._delay_timer.is_pending:
            self._delay_timer.start(self.policy.max_delay)

    def _flush_ack(self, trigger: Packet) -> None:
        self._delay_timer.cancel()
        self._unacked_packets = 0
        self._pending_trigger = None
        self.send_ack(trigger)

    def _on_delay_expired(self) -> None:
        if self._pending_trigger is not None:
            self._flush_ack(self._pending_trigger)
