"""UDP agents and the paced (CBR) UDP source.

The paper uses an "optimally paced UDP" flow as an upper bound on the goodput a
transport protocol can achieve over an IEEE 802.11 chain: a constant-bit-rate
source that transmits one 1460-byte datagram every *t* seconds, with *t* tuned
offline to the value that maximizes sink goodput (Figure 10).  There are no
acknowledgements and no retransmissions; goodput is simply what arrives at the
sink.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.engine import Simulator
from repro.core.tracing import NULL_TRACER, Tracer
from repro.net.address import FlowAddress
from repro.net.headers import IpHeader, IpProtocol, UdpHeader
from repro.net.packet import Packet
from repro.transport.stats import FlowStats
from repro.transport.tcp_base import TransportAgent


class UdpSender(TransportAgent):
    """Simple UDP sender: transmits datagrams on demand (driven by an app)."""

    def __init__(
        self,
        sim: Simulator,
        flow: FlowAddress,
        flow_stats: FlowStats,
        payload_size: int = 1460,
        send_callback: Optional[Callable[[Packet], None]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(
            sim=sim,
            flow=flow,
            local_node=flow.src_node,
            local_port=flow.src_port,
            send_callback=send_callback,
            tracer=tracer,
        )
        self.stats = flow_stats
        self.payload_size = payload_size
        self._next_seq = 0

    def send_datagram(self) -> None:
        """Transmit one datagram of ``payload_size`` bytes."""
        header = UdpHeader(
            src_port=self.flow.src_port,
            dst_port=self.flow.dst_port,
            seq=self._next_seq,
        )
        packet = Packet(
            payload_size=self.payload_size,
            flow_id=self.stats.flow_id,
            created_at=self.sim.now,
            ip=IpHeader(src=self.flow.src_node, dst=self.flow.dst_node,
                        protocol=IpProtocol.UDP),
            udp=header,
        )
        self._next_seq += 1
        self.stats._packets_sent.value += 1
        self._send_ip(packet)

    @property
    def datagrams_sent(self) -> int:
        """Number of datagrams handed to the network so far."""
        return self._next_seq

    def receive(self, packet: Packet) -> None:
        """UDP senders in this study never receive traffic."""


class UdpSink(TransportAgent):
    """UDP sink: counts every received datagram towards goodput."""

    def __init__(
        self,
        sim: Simulator,
        flow: FlowAddress,
        flow_stats: FlowStats,
        send_callback: Optional[Callable[[Packet], None]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(
            sim=sim,
            flow=flow,
            local_node=flow.dst_node,
            local_port=flow.dst_port,
            send_callback=send_callback,
            tracer=tracer,
        )
        self.stats = flow_stats
        self.received = 0

    def receive(self, packet: Packet) -> None:
        """Record the arrival of a datagram."""
        self.received += 1
        self.stats.record_delivery(self.sim.now, packet.payload_size, packets=1)


class PacedUdpSource:
    """Constant-bit-rate driver for a :class:`UdpSender`.

    Args:
        sim: Simulation engine.
        sender: The UDP sender to drive.
        interval: Time *t* between successive datagram transmissions (s).
        start_time: Simulation time of the first transmission.
        packet_limit: Optional cap on the number of datagrams sent.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: UdpSender,
        interval: float,
        start_time: float = 0.0,
        packet_limit: Optional[int] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("pacing interval must be positive")
        self.sim = sim
        self.sender = sender
        self.interval = interval
        self.start_time = start_time
        self.packet_limit = packet_limit
        self._running = False

    def start(self) -> None:
        """Schedule the first transmission."""
        if self._running:
            return
        self._running = True
        delay = max(0.0, self.start_time - self.sim.now)
        self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop generating datagrams (the pending one still fires harmlessly)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self.packet_limit is not None and self.sender.datagrams_sent >= self.packet_limit:
            self._running = False
            return
        self.sender.send_datagram()
        self.sim.schedule(self.interval, self._tick)
