"""Packet-level TCP sender base class.

The agents model TCP the way ns-2's one-way agents do (which is what the paper
uses): data flows in MSS-sized segments identified by integer sequence numbers,
the sink returns cumulative ACKs, and there is no connection handshake or byte
stream reassembly.  Congestion control is supplied by subclasses
(:class:`repro.transport.newreno.NewRenoSender`,
:class:`repro.transport.vegas.VegasSender`) through the ``on_new_ack`` /
``on_dup_ack`` / ``on_timeout`` hooks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.engine import Simulator, Timer
from repro.core.errors import TransportError
from repro.core.tracing import NULL_TRACER, Tracer
from repro.net.address import FlowAddress
from repro.net.headers import IpHeader, IpProtocol, TcpFlag, TcpHeader
from repro.net.packet import Packet
from repro.transport.rtt import RttEstimator
from repro.transport.stats import FlowStats


@dataclass(frozen=True)
class TcpConfig:
    """TCP parameters (Table 1 of the paper plus timer settings).

    Attributes:
        mss: Segment payload size in bytes (the paper uses 1460-byte packets).
        max_window: Receiver-advertised window W_max in segments (64).
        initial_window: Initial congestion window W_init in segments (1).
        initial_ssthresh: Initial slow-start threshold in segments.
        dupack_threshold: Number of duplicate ACKs triggering fast retransmit.
        min_rto: Lower bound on the retransmission timeout (s).
        initial_rto: RTO before the first RTT measurement (s).
        max_rto: Upper bound on the retransmission timeout (s).
    """

    mss: int = 1460
    max_window: int = 64
    initial_window: int = 1
    initial_ssthresh: int = 64
    dupack_threshold: int = 3
    min_rto: float = 0.2
    initial_rto: float = 3.0
    max_rto: float = 60.0


class TransportAgent(abc.ABC):
    """Base class for all transport endpoints (TCP senders, sinks, UDP).

    Args:
        sim: Simulation engine.
        flow: End-to-end flow address; ``flow.src_node`` must be the node this
            agent is installed on for senders, ``flow.dst_node`` for sinks.
        local_node: Node id the agent runs on.
        local_port: Port this agent listens on at ``local_node``.
        send_callback: Function that hands an IP packet to the local routing
            layer (wired up by :class:`repro.net.node.Node`).
        tracer: Optional tracer.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: FlowAddress,
        local_node: int,
        local_port: int,
        send_callback: Optional[Callable[[Packet], None]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.flow = flow
        self.local_node = local_node
        self.local_port = local_port
        self.send_callback = send_callback
        self.tracer = tracer

    def attach(self, send_callback: Callable[[Packet], None]) -> None:
        """Connect the agent to its node's routing layer."""
        self.send_callback = send_callback

    def _send_ip(self, packet: Packet) -> None:
        if self.send_callback is None:
            raise TransportError("transport agent is not attached to a node")
        self.send_callback(packet)

    @abc.abstractmethod
    def receive(self, packet: Packet) -> None:
        """Handle a packet delivered to this agent's port."""


class TcpSender(TransportAgent):
    """Common machinery for packet-level TCP senders.

    Subclasses implement the congestion-control hooks.  The sender models a
    persistent (FTP-like) source by default: it always has data to send until
    ``data_limit_packets`` (if set) is reached.

    Attributes:
        cwnd: Congestion window in segments (float; fractional growth in
            congestion avoidance).
        ssthresh: Slow-start threshold in segments.
        snd_una: Lowest unacknowledged sequence number.
        snd_nxt: Next new sequence number to be sent.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: FlowAddress,
        flow_stats: FlowStats,
        config: Optional[TcpConfig] = None,
        data_limit_packets: Optional[int] = None,
        send_callback: Optional[Callable[[Packet], None]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(
            sim=sim,
            flow=flow,
            local_node=flow.src_node,
            local_port=flow.src_port,
            send_callback=send_callback,
            tracer=tracer,
        )
        self.config = config or TcpConfig()
        self.stats = flow_stats
        self.data_limit_packets = data_limit_packets

        self.cwnd: float = float(self.config.initial_window)
        self.ssthresh: float = float(self.config.initial_ssthresh)
        self.snd_una: int = 0
        self.snd_nxt: int = 0
        self.dupacks: int = 0
        self.started = False

        self.rtt = RttEstimator(
            min_rto=self.config.min_rto,
            initial_rto=self.config.initial_rto,
            max_rto=self.config.max_rto,
        )
        self._rtx_timer = Timer(sim, self._on_rtx_timeout)
        #: seq -> (send time, was_retransmitted) for Karn/Vegas bookkeeping.
        self._send_times: Dict[int, Tuple[float, bool]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting (typically scheduled by the application)."""
        if self.started:
            return
        self.started = True
        self.stats.record_window(self.sim.now, self.cwnd)
        self.send_available()

    def stop(self) -> None:
        """Stop the sender and cancel its retransmission timer."""
        self.started = False
        self._rtx_timer.cancel()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def effective_window(self) -> int:
        """Usable window: min(cwnd, advertised window), at least one segment."""
        return max(1, min(int(self.cwnd), self.config.max_window))

    def _app_has_data(self, seq: int) -> bool:
        if self.data_limit_packets is None:
            return True
        return seq < self.data_limit_packets

    def send_available(self) -> None:
        """Send as many new segments as the current window permits."""
        if not self.started:
            return
        while (
            self.snd_nxt < self.snd_una + self.effective_window()
            and self._app_has_data(self.snd_nxt)
        ):
            self._send_segment(self.snd_nxt, is_retransmission=False)
            self.snd_nxt += 1
        self._ensure_timer()

    def retransmit(self, seq: int) -> None:
        """Retransmit segment ``seq`` and restart the retransmission timer."""
        self._send_segment(seq, is_retransmission=True)
        self._rtx_timer.start(self.rtt.timeout())

    def _send_segment(self, seq: int, is_retransmission: bool) -> None:
        now = self.sim.now
        header = TcpHeader(
            src_port=self.flow.src_port,
            dst_port=self.flow.dst_port,
            seq=seq,
            window=self.config.max_window,
            timestamp=now,
        )
        packet = Packet(
            payload_size=self.config.mss,
            flow_id=self.stats.flow_id,
            created_at=now,
            ip=IpHeader(src=self.flow.src_node, dst=self.flow.dst_node,
                        protocol=IpProtocol.TCP),
            tcp=header,
        )
        self.stats._packets_sent.value += 1
        if is_retransmission:
            self.stats._retransmissions.value += 1
        previous = self._send_times.get(seq)
        retransmitted = is_retransmission or (previous is not None and previous[1])
        self._send_times[seq] = (now, retransmitted)
        if self.tracer.enabled:
            self.tracer.record(now, "tcp", "send", node=self.local_node, seq=seq,
                               flow=self.stats.flow_id, rtx=is_retransmission)
        self._send_ip(packet)

    def _ensure_timer(self) -> None:
        if self.snd_una < self.snd_nxt and not self._rtx_timer.is_pending:
            self._rtx_timer.start(self.rtt.timeout())

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Process an incoming ACK segment."""
        tcp = packet.require_tcp()
        if not tcp.is_ack:
            return
        self.stats._acks_received.value += 1
        ack = tcp.ack
        if ack > self.snd_una:
            self._handle_new_ack(ack, packet)
        elif ack == self.snd_una and self.snd_una < self.snd_nxt:
            self.dupacks += 1
            self.on_dup_ack(packet)
        self.send_available()

    def _handle_new_ack(self, ack: int, packet: Packet) -> None:
        tcp = packet.require_tcp()
        sample = self._rtt_sample(tcp)
        if sample is not None:
            self.rtt.update(sample)
            if self.stats.series_enabled:
                self.stats.record_rtt(self.sim.now, sample)
        newly_acked = ack - self.snd_una
        for seq in range(self.snd_una, ack):
            self._send_times.pop(seq, None)
        self.snd_una = ack
        self.dupacks = 0
        self.rtt.reset_backoff()
        self.on_new_ack(newly_acked, packet)
        if self.snd_una >= self.snd_nxt and (
            self.data_limit_packets is None or self.snd_una >= self.data_limit_packets
        ):
            self._rtx_timer.cancel()
        else:
            self._rtx_timer.start(self.rtt.timeout())

    def _rtt_sample(self, tcp: TcpHeader) -> Optional[float]:
        if tcp.echo_timestamp <= 0:
            return None
        sample = self.sim.now - tcp.echo_timestamp
        return sample if sample > 0 else None

    def segment_age(self, seq: int) -> Optional[float]:
        """Seconds since segment ``seq`` was (re)transmitted, if outstanding."""
        entry = self._send_times.get(seq)
        if entry is None:
            return None
        return self.sim.now - entry[0]

    # ------------------------------------------------------------------
    # Window handling
    # ------------------------------------------------------------------
    def set_cwnd(self, value: float) -> None:
        """Set the congestion window, clamped to [1, max_window]."""
        clamped = max(1.0, min(float(value), float(self.config.max_window)))
        self.cwnd = clamped
        self.stats.record_window(self.sim.now, self.cwnd)

    @property
    def flight_size(self) -> int:
        """Number of outstanding (unacknowledged) segments."""
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------
    # Timeout handling
    # ------------------------------------------------------------------
    def _on_rtx_timeout(self) -> None:
        if self.snd_una >= self.snd_nxt:
            return
        self.stats._timeouts.value += 1
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, "tcp", "rto", node=self.local_node,
                               flow=self.stats.flow_id, una=self.snd_una)
        self.rtt.apply_backoff()
        self.on_timeout()
        self.retransmit(self.snd_una)

    # ------------------------------------------------------------------
    # Congestion-control hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_new_ack(self, newly_acked: int, packet: Packet) -> None:
        """Called for every ACK that advances ``snd_una``."""

    @abc.abstractmethod
    def on_dup_ack(self, packet: Packet) -> None:
        """Called for every duplicate ACK."""

    @abc.abstractmethod
    def on_timeout(self) -> None:
        """Called when the retransmission timer expires (before retransmit)."""
